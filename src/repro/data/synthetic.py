"""Synthetic scalar fields of controlled size and complexity (§VI-B).

"We generated synthetic datasets of various size and complexity by
computing a sinusoidal scalar field.  The data are 3D 32-bit floating
point values, on a cubic grid of a given number of points per side of the
cube. ... The complexity, or number of features per side, is how many
times the sine function has a ±1 value along the length of one side of
the volume."

:func:`sinusoidal_field` reproduces that family: a product of per-axis
sines whose frequency puts ``features_per_side`` extrema along each axis,
so the expected number of significant maxima scales as
``features_per_side**3 / 2`` independent of the sampling resolution.
"""

from __future__ import annotations

import numpy as np

from repro.io.volume import VolumeSpec, write_volume_slabs

__all__ = [
    "sinusoidal_field",
    "gaussian_bumps_field",
    "expected_extrema",
    "write_volume_chunked",
]


def sinusoidal_field(
    points_per_side: int,
    features_per_side: int,
    dims: tuple[int, int, int] | None = None,
    phase: float = 0.0,
    tilt: float = 1e-4,
    dtype=np.float32,
) -> np.ndarray:
    """The paper's sinusoidal test family.

    Parameters
    ----------
    points_per_side:
        Samples per axis (cubic volume unless ``dims`` given); "512 points
        per side represents a 512x512x512 volume".
    features_per_side:
        How many times the per-axis sine reaches ±1 along one side.
    dims:
        Optional non-cubic dims overriding ``points_per_side``.
    phase:
        Phase offset, useful for generating decorrelated variants.
    tilt:
        Amplitude of a tiny linear ramp added to break the exact value
        ties of the product-of-sines field (its symmetry repeats the
        same sample values across the whole volume).  Massive ties drive
        long zero-persistence cancellation chains and parallel-arc
        growth during simplification — an artifact of perfect symmetry
        that real simulation data never has.  Set to 0 to study the
        fully degenerate field.

    Returns
    -------
    float array (32-bit by default, as in the paper) indexed ``[i, j, k]``.
    """
    if features_per_side < 1:
        raise ValueError("features_per_side must be >= 1")
    shape = dims if dims is not None else (points_per_side,) * 3
    if any(n < 2 for n in shape):
        raise ValueError(f"volume dims too small: {shape}")
    axes = []
    for n in shape:
        t = np.linspace(0.0, 1.0, n)
        # sin(pi*k*t + pi/2k) hits +-1 exactly k times on t in [0, 1]
        k = features_per_side
        axes.append(np.sin(np.pi * k * t + np.pi / (2 * k) + phase))
    f = (
        axes[0][:, None, None]
        * axes[1][None, :, None]
        * axes[2][None, None, :]
    )
    if tilt:
        ramps = [
            np.linspace(0.0, (a + 1) * tilt, n)
            for a, n in enumerate(shape)
        ]
        f = (
            f
            + ramps[0][:, None, None]
            + ramps[1][None, :, None]
            + ramps[2][None, None, :]
        )
    return f.astype(dtype)


def expected_extrema(features_per_side: int) -> int:
    """Rough expected count of maxima of the sinusoidal field.

    The product of three sines with ``k`` extrema per axis has about
    ``k**3`` local extrema, half of which are maxima.  Used by benches to
    sanity-check measured feature counts.
    """
    return max(1, features_per_side**3 // 2)


def gaussian_bumps_field(
    dims: tuple[int, int, int],
    num_bumps: int,
    seed: int = 0,
    width: float = 0.12,
    noise: float = 0.0,
) -> np.ndarray:
    """Sum of randomly placed Gaussian bumps (smooth, feature-countable).

    A convenient test field: smooth (few spurious critical points), with
    a controllable number of well-separated maxima.  Optional white noise
    of amplitude ``noise`` exercises simplification.
    """
    rng = np.random.default_rng(seed)
    grids = [np.linspace(0.0, 1.0, n) for n in dims]
    X, Y, Z = np.meshgrid(*grids, indexing="ij")
    f = np.zeros(dims)
    centers = rng.uniform(0.15, 0.85, size=(num_bumps, 3))
    amps = rng.uniform(0.5, 1.0, size=num_bumps)
    for (cx, cy, cz), a in zip(centers, amps):
        f += a * np.exp(
            -((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2) / width**2
        )
    if noise > 0:
        f = f + rng.normal(0.0, noise, size=dims)
    return f


# ---------------------------------------------------------------------------
# chunked generation: paper-scale volumes without materializing them
# ---------------------------------------------------------------------------


def _sinusoid_slabs(shape, features_per_side, phase, tilt, slab_depth):
    """Z-slabs of :func:`sinusoidal_field`, bit-identical to slices of
    the whole field (every term is separable per axis, so a slab is the
    full outer product restricted to its z range)."""
    k = features_per_side
    axes = [
        np.sin(np.pi * k * np.linspace(0.0, 1.0, n) + np.pi / (2 * k) + phase)
        for n in shape
    ]
    ramps = (
        [
            np.linspace(0.0, (a + 1) * tilt, n)
            for a, n in enumerate(shape)
        ]
        if tilt
        else None
    )
    for z0 in range(0, shape[2], slab_depth):
        z1 = min(z0 + slab_depth, shape[2])
        f = (
            axes[0][:, None, None]
            * axes[1][None, :, None]
            * axes[2][z0:z1][None, None, :]
        )
        if ramps is not None:
            f = (
                f
                + ramps[0][:, None, None]
                + ramps[1][None, :, None]
                + ramps[2][z0:z1][None, None, :]
            )
        yield f


def _bumps_slabs(dims, num_bumps, seed, width, slab_depth):
    """Z-slabs of :func:`gaussian_bumps_field`, bit-identical to slices
    of the whole field (centers and amplitudes are drawn once up front,
    and each sample is an elementwise function of its own coordinates)."""
    rng = np.random.default_rng(seed)
    grids = [np.linspace(0.0, 1.0, n) for n in dims]
    centers = rng.uniform(0.15, 0.85, size=(num_bumps, 3))
    amps = rng.uniform(0.5, 1.0, size=num_bumps)
    for z0 in range(0, dims[2], slab_depth):
        z1 = min(z0 + slab_depth, dims[2])
        X, Y, Z = np.meshgrid(
            grids[0], grids[1], grids[2][z0:z1], indexing="ij"
        )
        f = np.zeros((dims[0], dims[1], z1 - z0))
        for (cx, cy, cz), a in zip(centers, amps):
            f += a * np.exp(
                -((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2)
                / width**2
            )
        yield f


def write_volume_chunked(
    path,
    kind: str = "sinusoid",
    *,
    dims: tuple[int, int, int] | None = None,
    points_per_side: int | None = None,
    features_per_side: int = 4,
    phase: float = 0.0,
    tilt: float = 1e-4,
    num_bumps: int = 16,
    seed: int = 0,
    width: float = 0.12,
    noise: float = 0.0,
    dtype: str = "float32",
    slab_depth: int = 16,
) -> VolumeSpec:
    """Stream a synthetic volume to disk slab-by-slab.

    Generates the same fields as :func:`sinusoidal_field`
    (``kind="sinusoid"``) and :func:`gaussian_bumps_field`
    (``kind="bumps"``) but computes only ``slab_depth`` z-planes at a
    time and appends them through
    :func:`repro.io.volume.write_volume_slabs` — so a paper-scale
    volume (the 1152³ Rayleigh-Taylor regime is ~5.7 GiB at float32)
    is written with a few MiB of peak memory.  The file is
    byte-identical to materializing the whole field (at the file's
    ``dtype`` precision) and calling
    :func:`~repro.io.volume.write_volume`: both field families are
    elementwise in their own coordinates (sinusoid terms are separable
    per axis; bump centers are drawn before any samples), so a slab
    equals the corresponding slice of the whole array.

    ``kind="bumps"`` with ``noise > 0`` raises :class:`ValueError`:
    whole-volume noise is drawn in one ``rng.normal(size=dims)`` call
    whose draw order cannot be reproduced slab-by-slab.

    Pass ``dims`` for an arbitrary box or ``points_per_side`` for a
    cube (exactly one of the two).  Returns the
    :class:`~repro.io.volume.VolumeSpec` of the written file.
    """
    if (dims is None) == (points_per_side is None):
        raise ValueError("pass exactly one of dims or points_per_side")
    shape = (
        tuple(int(n) for n in dims)
        if dims is not None
        else (int(points_per_side),) * 3
    )
    if len(shape) != 3 or any(n < 2 for n in shape):
        raise ValueError(f"volume dims too small: {shape}")
    if slab_depth < 1:
        raise ValueError("slab_depth must be >= 1")
    if kind == "sinusoid":
        if features_per_side < 1:
            raise ValueError("features_per_side must be >= 1")
        slabs = _sinusoid_slabs(
            shape, features_per_side, phase, tilt, slab_depth
        )
    elif kind == "bumps":
        if noise > 0:
            raise ValueError(
                "bumps noise cannot be generated chunked: the whole-"
                "volume rng draw order is not reproducible per slab; "
                "use gaussian_bumps_field + write_volume instead"
            )
        slabs = _bumps_slabs(shape, num_bumps, seed, width, slab_depth)
    else:
        raise ValueError(
            f"unknown field kind {kind!r}: choose one of "
            f"{{sinusoid, bumps}}"
        )
    return write_volume_slabs(path, shape, slabs, dtype=dtype)
