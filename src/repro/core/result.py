"""Pipeline run results."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.stats import PipelineStats
from repro.io.mscfile import write_msc_file
from repro.morse.msc import MorseSmaleComplex
from repro.parallel.decomposition import BlockDecomposition
from repro.parallel.radixk import MergeSchedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.hierarchy import MSComplexHierarchy

__all__ = ["PipelineResult"]


@dataclass
class PipelineResult:
    """Everything a pipeline run produces.

    ``output_blocks`` maps the (original-grid linear) block id of each
    surviving merge root to its merged, compacted MS complex — one entry
    after a full merge, ``num_blocks / prod(radices)`` after a partial
    merge, ``num_blocks`` with merging disabled.
    """

    output_blocks: dict[int, MorseSmaleComplex]
    decomposition: BlockDecomposition
    schedule: MergeSchedule
    stats: PipelineStats
    #: serialized record bytes per output block (the ``pack_complex``
    #: format, identical to ``to_payload`` serialization), cached by the
    #: pipeline's write stage so :meth:`write` does not re-pack
    output_blobs: dict[int, bytes] | None = None
    #: cancellation hierarchy captured per output block when the
    #: ``hierarchy`` execution option is on (``None`` otherwise);
    #: persisted by :meth:`write` into the ``.msc`` v2 hierarchy footer
    hierarchies: dict[int, "MSComplexHierarchy"] | None = None

    @property
    def merged_complexes(self) -> list[MorseSmaleComplex]:
        """Output complexes ordered by block id."""
        return [self.output_blocks[b] for b in sorted(self.output_blocks)]

    @property
    def num_output_blocks(self) -> int:
        return len(self.output_blocks)

    def combined_node_counts(self) -> tuple[int, int, int, int]:
        """Node counts by Morse index summed over all output blocks.

        With more than one output block, shared boundary nodes are
        counted once (they appear in several blocks' complexes), and
        ghost placeholders are not counted at all (their real copy lives
        in another block).
        """
        seen: set[int] = set()
        counts = [0, 0, 0, 0]
        for msc in self.output_blocks.values():
            for nid in msc.alive_nodes():
                if msc.node_ghost[nid]:
                    continue
                addr = msc.node_address[nid]
                if addr not in seen:
                    seen.add(addr)
                    counts[msc.node_index[nid]] += 1
        return tuple(counts)

    def write(self, path: str | Path) -> int:
        """Write the output blocks as an MSC file; returns bytes written.

        Uses the pipeline's cached serialized records when available
        (byte-identical to serializing ``to_payload()`` afresh), so the
        complexes are packed exactly once per run.  When the run
        captured cancellation hierarchies (the ``hierarchy`` execution
        option), they are persisted alongside the blocks in the ``.msc``
        v2 hierarchy footer; otherwise the file is plain v1.
        """
        blobs = self.output_blobs
        if blobs is not None and set(blobs) == set(self.output_blocks):
            blocks = [(bid, blobs[bid]) for bid in sorted(blobs)]
        else:
            blocks = [
                (bid, self.output_blocks[bid].to_payload())
                for bid in sorted(self.output_blocks)
            ]
        hier_arrays = None
        if self.hierarchies:
            hier_arrays = {
                bid: h.to_arrays() for bid, h in self.hierarchies.items()
            }
        return write_msc_file(path, blocks, hierarchies=hier_arrays)
