"""Persistent pipeline sessions: amortize setup across a time series.

A one-shot :meth:`~repro.core.pipeline.ParallelMSComplexPipeline.run`
pays its full setup cost every time: it forks a fresh compute worker
pool (and, in pooled merge mode, a second pool for the merge pre-pass),
publishes a new shared-memory segment, decomposes the domain, builds the
merge schedule, and warms the mesh structure tables — then tears it all
down.  That is the right shape for a single volume, and exactly the
wrong shape for the paper's stated in-situ direction (§VII-B, coupling
with S3D), where the *same* decomposition processes hundreds of
timesteps back to back.

:class:`PipelineSession` owns those resources across runs:

- the compute and merge :class:`~repro.parallel.executor.FaultTolerantExecutor`
  pools are created on first use and reused by every subsequent step —
  their restart/degrade fault handling is untouched (per-run budgets are
  fresh because each run swaps in zeroed stats via
  :meth:`~repro.parallel.executor.FaultTolerantExecutor.begin_run`);
- the shared-memory transport publishes into a reusable slot sized to
  the largest step seen so far: a steady-state step *rebinds* the
  existing segment in place (workers keep their cached attachment) and
  only a grown volume republishes;
- the plan — decomposition, merge schedule, per-round groups and cut
  planes, cost model — is cached per ``dims`` and replayed, and the
  structure-table memo stays warm from the first step.

Outputs are bit-identical to the one-shot path: everything a session
reuses is pure scheduling or a pure function of ``(options, dims)``.

Typical use::

    import repro

    with repro.open_session(persistence=0.05, ranks=8,
                            options=ExecutionOptions(workers=4)) as s:
        for field in timesteps:
            result = s.run(field)         # or s.run(volume_spec)
    print(s.stats.describe())

Streams of on-disk volumes combine naturally with the ``mmap``
transport: ``s.run(VolumeSpec(...))`` never materializes the volume in
the driver, so driver memory stays flat no matter how large the steps
are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.merge import validate_merge_payload
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    build_plan,
    validate_block_payload,
)
from repro.core.result import PipelineResult
from repro.io.spool import maybe_sweep_stale_spool_dirs
from repro.io.volume import VolumeSpec, invalidate_map_cache
from repro.mesh.grid import StructuredGrid
from repro.obs.trace import Tracer
from repro.parallel.executor import FaultTolerantExecutor
from repro.parallel.faults import MergeFaultAdapter

from contextlib import nullcontext

__all__ = ["PipelineSession", "SessionStats"]


@dataclass
class SessionStats:
    """Reuse accounting of one :class:`PipelineSession`."""

    #: steps completed through :meth:`PipelineSession.run`
    runs: int = 0
    #: runs that replayed a cached plan (decomposition + schedule)
    plan_cache_hits: int = 0
    #: runs that reused the live compute executor (pool intact)
    pool_reuse_hits: int = 0
    #: runs that reused the live merge-stage executor
    merge_pool_reuse_hits: int = 0
    #: steps whose shm publish rebound the existing segment in place
    shm_rebinds: int = 0
    #: steps whose shm publish created (or grew) a segment
    shm_republishes: int = 0
    #: real wall seconds of each step, in step order
    step_seconds: list[float] = field(default_factory=list)

    def steady_state_seconds_per_step(self) -> float:
        """Mean wall seconds per step, first (warm-up) step excluded."""
        steady = self.step_seconds[1:] or self.step_seconds
        if not steady:
            return 0.0
        return sum(steady) / len(steady)

    def steady_state_steps_per_sec(self) -> float:
        """Steady-state throughput in steps/second (see above)."""
        per_step = self.steady_state_seconds_per_step()
        return 1.0 / per_step if per_step > 0 else 0.0

    def describe(self) -> str:
        """One-line summary, e.g. for the CLI streaming report."""
        out = (
            f"session: {self.runs} steps, "
            f"{self.pool_reuse_hits} pool reuses, "
            f"{self.plan_cache_hits} plan cache hits, "
            f"{self.shm_rebinds} shm rebinds / "
            f"{self.shm_republishes} republishes"
        )
        if len(self.step_seconds) > 1:
            out += (
                f", {self.steady_state_steps_per_sec():.2f} "
                f"steps/s steady-state"
            )
        return out


class PipelineSession:
    """Long-lived pipeline resources for streaming time series.

    Construct with the same :class:`~repro.core.config.PipelineConfig`
    a one-shot pipeline takes (or use the :func:`repro.open_session`
    facade), call :meth:`run` once per timestep, and :meth:`close` when
    done (or use as a context manager).  Each run returns the same
    :class:`~repro.core.result.PipelineResult` — bit-identical to a
    fresh ``ParallelMSComplexPipeline(config).run(...)`` — while pools,
    the shm slot, plans, and warmed tables persist between calls.

    Fault tolerance across steps: a worker crash mid-series restarts the
    pool inside that step exactly as a one-shot run would, and the
    restarted pool serves the following steps.  An executor that
    *degraded* to serial stays serial for the rest of the session (the
    pool was declared unhealthy; per-step flip-flopping would thrash).
    Session close is the single release point for every OS resource —
    pools and shm segment — so chaos tests can assert nothing leaks.
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config
        self.stats = SessionStats()
        self._pipeline = ParallelMSComplexPipeline(config)
        self._plans: dict[tuple[int, int, int], Any] = {}
        self._compute_exec: FaultTolerantExecutor | None = None
        self._merge_exec: FaultTolerantExecutor | None = None
        self._closed = False
        # long-lived drivers are the natural place to reap spool dirs a
        # crashed earlier driver left behind (dead owner pid + an age
        # guard; once per process, cheap no-op afterwards)
        maybe_sweep_stale_spool_dirs()

    # -- the public surface ------------------------------------------------

    def run(
        self,
        values: np.ndarray | StructuredGrid | VolumeSpec | None = None,
        volume: VolumeSpec | None = None,
    ) -> PipelineResult:
        """Run one timestep through the persistent resources.

        Accepts everything the one-shot path does — an in-memory vertex
        array / :class:`StructuredGrid` (``values``) or a raw volume
        file (``volume``); a :class:`VolumeSpec` passed positionally is
        routed to ``volume`` for convenience.
        """
        if self._closed:
            raise RuntimeError("session is closed")
        if isinstance(values, VolumeSpec):
            if volume is not None:
                raise ValueError(
                    "pass exactly one of `values` or `volume`"
                )
            values, volume = None, values
        cfg = self.config
        tracer = Tracer(enabled=True)
        ambient = tracer.installed() if cfg.trace else nullcontext()
        with ambient:
            result = self._pipeline._run(
                tracer, values, volume, session=self
            )
        self.stats.runs += 1
        self.stats.step_seconds.append(result.stats.real_seconds_total)
        self.stats.shm_rebinds += result.stats.transport.shm_rebinds
        self.stats.shm_republishes += (
            result.stats.transport.shm_republishes
        )
        return result

    def close(self) -> None:
        """Release every owned OS resource: pools and the shm slot.

        Idempotent.  After close the session refuses further runs.
        Also drops the driver-process memmap cache: a service process
        that overwrites a volume file between jobs must never serve
        blocks from a map of the file's previous contents.
        """
        if self._closed:
            return
        self._closed = True
        for ex in (self._compute_exec, self._merge_exec):
            if ex is not None:
                ex.close()
        self._compute_exec = None
        self._merge_exec = None
        invalidate_map_cache()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- hooks the pipeline driver calls -----------------------------------

    def _plan_for(self, dims) -> tuple[Any, bool]:
        """The cached plan for ``dims`` (built on first sight)."""
        key = tuple(int(n) for n in dims)
        plan = self._plans.get(key)
        if plan is not None:
            self.stats.plan_cache_hits += 1
            return plan, True
        plan = build_plan(self.config, key)
        self._plans[key] = plan
        return plan, False

    def _compute_executor(
        self, ft_stats, transport, tracer
    ) -> tuple[FaultTolerantExecutor, bool]:
        """The persistent compute executor, rebound to this run's sinks."""
        cfg = self.config
        if self._compute_exec is None:
            self._compute_exec = FaultTolerantExecutor(
                kind=cfg.resolved_executor,
                workers=cfg.workers,
                policy=cfg.retry_policy(),
                plan=cfg.faults,
                validator=validate_block_payload,
                stats=ft_stats,
                transport=transport,
                tracer=tracer,
            )
            return self._compute_exec, False
        self._compute_exec.begin_run(
            stats=ft_stats, transport=transport, tracer=tracer
        )
        self.stats.pool_reuse_hits += 1
        return self._compute_exec, True

    def _merge_pool_executor(
        self, merge_ft, tracer
    ) -> tuple[FaultTolerantExecutor, bool]:
        """The persistent merge-stage executor (pooled merge mode)."""
        cfg = self.config
        if self._merge_exec is None:
            self._merge_exec = FaultTolerantExecutor(
                kind="process",
                workers=cfg.workers,
                policy=cfg.retry_policy(),
                plan=(
                    MergeFaultAdapter(cfg.faults)
                    if cfg.faults is not None
                    else None
                ),
                validator=validate_merge_payload,
                stats=merge_ft,
                tracer=tracer,
            )
            return self._merge_exec, False
        self._merge_exec.begin_run(stats=merge_ft, tracer=tracer)
        self.stats.merge_pool_reuse_hits += 1
        return self._merge_exec, True

    def _fill_session_metrics(self, registry) -> None:
        """Session-reuse gauges for runs with ``metrics=True``.

        Counts include the current run (called at run end).
        """
        registry.gauge("session.runs").set(self.stats.runs + 1)
        registry.gauge("session.pool_reuse_hits").set(
            self.stats.pool_reuse_hits
        )
        registry.gauge("session.plan_cache_hits").set(
            self.stats.plan_cache_hits
        )
