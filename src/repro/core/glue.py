"""Gluing two MS complexes at their shared boundary nodes (paper §IV-F3).

"Our technique for computing the discrete gradient ensures that it is
identical on the shared boundary between blocks B_root and B_i.
Therefore, any critical cell in this shared boundary is a node in both
MS_root and MS_i.  These shared nodes anchor the gluing process.

To glue MS_root and MS_i, first, each node n_j in MS_i that is not on
the shared boundary is added to MS_root.  Next, each arc from MS_i is
added to MS_root along with its corresponding geometry objects only if
both its endpoints are not on the shared boundary.  When both endpoints
of an arc are on the shared boundary, the arc is guaranteed to exist in
MS_root already."

Because block regions intersect exactly on their shared boundary, "node
is on the shared boundary" is equivalent to "a node with the same global
address already exists in MS_root" — the address encodes the geometric
location, so co-located nodes are detected by address comparison.  Arcs
whose V-path has entered a shared face can never leave it (the
boundary-restricted pairing keeps face cells paired within the face), so
an arc between two shared nodes lies entirely in the shared boundary and
is bit-identical in both complexes — skipping it is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.morse.msc import MorseSmaleComplex

__all__ = ["GlueStats", "glue_into"]


@dataclass
class GlueStats:
    """Counters of one glue operation (consumed by the cost model)."""

    nodes_added: int = 0
    arcs_added: int = 0
    shared_nodes: int = 0
    arcs_skipped: int = 0

    def __iadd__(self, other: "GlueStats") -> "GlueStats":
        self.nodes_added += other.nodes_added
        self.arcs_added += other.arcs_added
        self.shared_nodes += other.shared_nodes
        self.arcs_skipped += other.arcs_skipped
        return self


def glue_into(
    root: MorseSmaleComplex,
    other: MorseSmaleComplex,
    addr_index: dict[int, int],
) -> GlueStats:
    """Glue ``other`` into ``root`` in place.

    Parameters
    ----------
    root:
        The group root's complex (grows).
    other:
        A compacted complex received from a group member.  Must share
        ``global_refined_dims`` with the root.
    addr_index:
        Address -> node-id map over the root's living nodes (as returned
        by :meth:`MorseSmaleComplex.address_index`); updated in place so
        that gluing several members at the same root stays linear-time.
    """
    if other.global_refined_dims != root.global_refined_dims:
        raise ValueError("cannot glue complexes of different datasets")

    stats = GlueStats()
    node_map: dict[int, int] = {}
    shared: set[int] = set()
    for nid in other.alive_nodes():
        addr = other.node_address[nid]
        existing = addr_index.get(addr)
        if existing is not None:
            if root.node_index[existing] != other.node_index[nid]:
                raise AssertionError(
                    f"shared node at address {addr} disagrees on Morse "
                    f"index: {root.node_index[existing]} vs "
                    f"{other.node_index[nid]}"
                )
            # The "arc already exists in the root" rule only applies to
            # genuine shared-boundary nodes.  A ghost placeholder (from a
            # global-simplification split) matching an incoming real node
            # carries none of its arcs, so it must not suppress them.
            if root.node_ghost[existing] and not other.node_ghost[nid]:
                root.node_ghost[existing] = False
                root.node_boundary[existing] = other.node_boundary[nid]
            elif not root.node_ghost[existing] and not other.node_ghost[nid]:
                shared.add(nid)
            node_map[nid] = existing
            stats.shared_nodes += 1
        else:
            new_id = root.add_node(
                addr,
                other.node_index[nid],
                other.node_value[nid],
                other.node_boundary[nid],
                other.node_ghost[nid],
            )
            addr_index[addr] = new_id
            node_map[nid] = new_id
            stats.nodes_added += 1

    for aid in other.alive_arcs():
        u = other.arc_upper[aid]
        l = other.arc_lower[aid]
        if u in shared and l in shared:
            # the arc lies within the shared boundary and already exists
            # in the root complex
            stats.arcs_skipped += 1
            continue
        gid = root.new_leaf_geometry(other.geometry_addresses(aid))
        root.add_arc(node_map[u], node_map[l], gid)
        stats.arcs_added += 1

    root.region_lo = tuple(
        min(a, b) for a, b in zip(root.region_lo, other.region_lo)
    )
    root.region_hi = tuple(
        max(a, b) for a, b in zip(root.region_hi, other.region_hi)
    )
    return stats
