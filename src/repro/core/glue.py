"""Gluing two MS complexes at their shared boundary nodes (paper §IV-F3).

"Our technique for computing the discrete gradient ensures that it is
identical on the shared boundary between blocks B_root and B_i.
Therefore, any critical cell in this shared boundary is a node in both
MS_root and MS_i.  These shared nodes anchor the gluing process.

To glue MS_root and MS_i, first, each node n_j in MS_i that is not on
the shared boundary is added to MS_root.  Next, each arc from MS_i is
added to MS_root along with its corresponding geometry objects only if
both its endpoints are not on the shared boundary.  When both endpoints
of an arc are on the shared boundary, the arc is guaranteed to exist in
MS_root already."

Because block regions intersect exactly on their shared boundary, "node
is on the shared boundary" is equivalent to "a node with the same global
address already exists in MS_root" — the address encodes the geometric
location, so co-located nodes are detected by address comparison.  Arcs
whose V-path has entered a shared face can never leave it (the
boundary-restricted pairing keeps face cells paired within the face), so
an arc between two shared nodes lies entirely in the shared boundary and
is bit-identical in both complexes — skipping it is exact.

The address match runs as one sorted/searchsorted join of the member's
living addresses against an :class:`AddressIndex` over the root, and
surviving nodes/arcs are appended through the bulk ``add_nodes`` /
``add_leaf_arcs_flat`` record APIs — the records produced are
byte-identical to the historical per-node/per-arc loop (same id
assignment order), only the Python-level iteration is gone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.morse.msc import ArcGeometry, MorseSmaleComplex

__all__ = ["AddressIndex", "GlueStats", "glue_into"]


@dataclass
class GlueStats:
    """Counters of one glue operation (consumed by the cost model)."""

    nodes_added: int = 0
    arcs_added: int = 0
    shared_nodes: int = 0
    arcs_skipped: int = 0

    def __iadd__(self, other: "GlueStats") -> "GlueStats":
        self.nodes_added += other.nodes_added
        self.arcs_added += other.arcs_added
        self.shared_nodes += other.shared_nodes
        self.arcs_skipped += other.arcs_skipped
        return self


class AddressIndex:
    """Sorted address -> node-id index over a complex's living nodes.

    The vectorized counterpart of
    :meth:`MorseSmaleComplex.address_index`: a whole address array is
    resolved with one ``searchsorted`` join instead of per-node dict
    probes.  Supports in-place extension as gluing adds nodes, so
    merging several members into one root reuses a single index.
    """

    __slots__ = ("_addrs", "_ids")

    def __init__(self) -> None:
        self._addrs = np.empty(0, dtype=np.int64)
        self._ids = np.empty(0, dtype=np.int64)

    @classmethod
    def from_complex(cls, msc: MorseSmaleComplex) -> "AddressIndex":
        """Index ``msc``'s living nodes by global address."""
        index = cls()
        nids = np.nonzero(np.asarray(msc.node_alive, dtype=bool))[0]
        if nids.size:
            addrs = np.asarray(msc.node_address, dtype=np.int64)[nids]
            order = np.argsort(addrs)
            index._addrs = addrs[order]
            index._ids = nids[order].astype(np.int64)
        return index

    def lookup(self, queries: np.ndarray) -> np.ndarray:
        """Node ids for an int64 address array; ``-1`` where absent."""
        if self._addrs.size == 0:
            return np.full(queries.shape, -1, dtype=np.int64)
        pos = np.minimum(
            np.searchsorted(self._addrs, queries), self._addrs.size - 1
        )
        return np.where(
            self._addrs[pos] == queries, self._ids[pos], np.int64(-1)
        )

    def extend(self, addrs, ids) -> None:
        """Insert new (address, node id) pairs; addresses must be new."""
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.size == 0:
            return
        merged = np.concatenate([self._addrs, addrs])
        order = np.argsort(merged, kind="stable")
        self._addrs = merged[order]
        self._ids = np.concatenate(
            [self._ids, np.asarray(ids, dtype=np.int64)]
        )[order]

    def __len__(self) -> int:
        return int(self._addrs.size)

    def __contains__(self, addr: int) -> bool:
        return bool(self.lookup(np.asarray([addr], dtype=np.int64))[0] >= 0)


def glue_into(
    root: MorseSmaleComplex,
    other: MorseSmaleComplex,
    addr_index,
    touched: set[int] | None = None,
) -> GlueStats:
    """Glue ``other`` into ``root`` in place.

    Parameters
    ----------
    root:
        The group root's complex (grows).
    other:
        A compacted complex received from a group member.  Must share
        ``global_refined_dims`` with the root.
    addr_index:
        Address -> node-id map over the root's living nodes: either an
        :class:`AddressIndex` (the fast path) or a plain dict (as
        returned by :meth:`MorseSmaleComplex.address_index`).  Updated
        in place so that gluing several members at the same root stays
        linear-time.
    touched:
        Optional set collecting the root-side ids of every node the glue
        referenced (matched, unghosted, or newly added) — the seed set
        for incremental re-simplification.
    """
    if other.global_refined_dims != root.global_refined_dims:
        raise ValueError("cannot glue complexes of different datasets")

    stats = GlueStats()
    n_other = len(other.node_address)
    node_map = np.full(n_other, -1, dtype=np.int64)
    shared = np.zeros(n_other, dtype=bool)
    nids = np.nonzero(np.asarray(other.node_alive, dtype=bool))[0]

    if nids.size:
        addrs = np.asarray(other.node_address, dtype=np.int64)[nids]
        if isinstance(addr_index, dict):
            get = addr_index.get
            existing = np.fromiter(
                (get(a, -1) for a in addrs.tolist()),
                dtype=np.int64,
                count=int(addrs.size),
            )
        else:
            existing = addr_index.lookup(addrs)
        hit = existing >= 0
        hit_nids = nids[hit]
        hit_ids = existing[hit]
        if hit_nids.size:
            other_index = np.asarray(other.node_index, dtype=np.int64)
            root_index = np.asarray(root.node_index, dtype=np.int64)
            mismatch = root_index[hit_ids] != other_index[hit_nids]
            if mismatch.any():
                k = int(np.argmax(mismatch))
                raise AssertionError(
                    f"shared node at address {int(addrs[hit][k])} "
                    "disagrees on Morse index: "
                    f"{int(root_index[hit_ids[k]])} vs "
                    f"{int(other_index[hit_nids[k]])}"
                )
            # The "arc already exists in the root" rule only applies to
            # genuine shared-boundary nodes.  A ghost placeholder (from a
            # global-simplification split) matching an incoming real node
            # carries none of its arcs, so it must not suppress them.
            root_ghost = np.asarray(root.node_ghost, dtype=bool)
            other_ghost = np.asarray(other.node_ghost, dtype=bool)
            unghost = root_ghost[hit_ids] & ~other_ghost[hit_nids]
            for nid, ex in zip(
                hit_nids[unghost].tolist(), hit_ids[unghost].tolist()
            ):
                root.node_ghost[ex] = False
                root.node_boundary[ex] = other.node_boundary[nid]
            shared[hit_nids[~root_ghost[hit_ids] & ~other_ghost[hit_nids]]] = (
                True
            )
            node_map[hit_nids] = hit_ids
            stats.shared_nodes = int(hit_nids.size)

        miss_nids = nids[~hit]
        if miss_nids.size:
            new_addrs = addrs[~hit]
            first = len(root.node_address)
            root.add_nodes(
                new_addrs.tolist(),
                np.asarray(other.node_index, dtype=np.int64)[
                    miss_nids
                ].tolist(),
                np.asarray(other.node_value, dtype=np.float64)[
                    miss_nids
                ].tolist(),
                np.asarray(other.node_boundary, dtype=bool)[
                    miss_nids
                ].tolist(),
                ghosts=np.asarray(other.node_ghost, dtype=bool)[
                    miss_nids
                ].tolist(),
            )
            new_ids = np.arange(
                first, first + miss_nids.size, dtype=np.int64
            )
            node_map[miss_nids] = new_ids
            if isinstance(addr_index, dict):
                addr_index.update(
                    zip(new_addrs.tolist(), new_ids.tolist())
                )
            else:
                addr_index.extend(new_addrs, new_ids)
            stats.nodes_added = int(miss_nids.size)

        if touched is not None:
            touched.update(node_map[nids].tolist())

    aids = np.nonzero(np.asarray(other.arc_alive, dtype=bool))[0]
    if aids.size:
        uppers = np.asarray(other.arc_upper, dtype=np.int64)[aids]
        lowers = np.asarray(other.arc_lower, dtype=np.int64)[aids]
        # an arc between two shared nodes lies within the shared
        # boundary and already exists in the root complex
        skip = shared[uppers] & shared[lowers]
        keep = ~skip
        stats.arcs_skipped = int(np.count_nonzero(skip))
        kept = aids[keep]
        if kept.size:
            # adopt the member's leaf geometry objects outright — the
            # member complex is discarded after the merge, and a
            # compacted member's geometries are all leaves already
            geoms_o, arc_geom_o = other.geoms, other.arc_geom
            kept_geoms = []
            for a in kept.tolist():
                g = geoms_o[arc_geom_o[a]]
                if not g.is_leaf:
                    flat = other.geometry_addresses(a)
                    g = ArcGeometry(leaf=flat, length=int(flat.size))
                kept_geoms.append(g)
            root.add_leaf_arcs_flat(
                node_map[uppers[keep]],
                node_map[lowers[keep]],
                kept_geoms,
            )
            stats.arcs_added = int(kept.size)

    root.region_lo = tuple(
        min(a, b) for a, b in zip(root.region_lo, other.region_lo)
    )
    root.region_hi = tuple(
        max(a, b) for a, b in zip(root.region_hi, other.region_hi)
    )
    return stats
