"""Pipeline configuration.

Bundles the tunable parameters the paper exposes: "blocking strategy,
merging strategy, and simplification level of the topology" (§I), plus
the virtual machine parameters of this reproduction.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.machine.bgp import BlueGenePParams
from repro.parallel.radixk import MergeSchedule, full_merge_radices

__all__ = ["PipelineConfig", "MergeSchedule"]


@dataclass
class PipelineConfig:
    """Configuration of one parallel MS complex computation.

    Parameters
    ----------
    num_blocks:
        Number of blocks of the domain decomposition (power of two for
        the paper's bisection; otherwise pass explicit ``splits``).
    num_procs:
        Number of virtual processes; defaults to one block per process,
        the configuration the paper uses in all its studies.  May be
        smaller than ``num_blocks`` (block-cyclic assignment).
    splits:
        Optional explicit per-axis block counts overriding bisection.
    persistence_threshold:
        Per-block and per-merge simplification threshold (absolute
        function-value difference).  0 disables simplification except
        for the zero-persistence pairs produced by ties.
    merge_radices:
        ``"full"`` (merge to one block using the paper's guideline
        schedule), ``"none"`` (skip merging entirely), or an explicit
        sequence of radices in {2, 4, 8} for a partial merge.
    max_radix:
        Highest radix used when ``merge_radices="full"``.
    machine:
        Virtual Blue Gene/P parameters for the cost model.
    validate:
        Run structural invariant checks after every stage (slow; meant
        for tests and small volumes).
    simplify_at_zero_persistence:
        Cancel zero-persistence pairs even when the threshold is 0;
        matches the paper's handling of boundary artifacts, whose
        cancellation "directly connects important critical points in the
        interiors of neighboring blocks".
    """

    num_blocks: int
    num_procs: int | None = None
    splits: tuple[int, int, int] | None = None
    persistence_threshold: float = 0.0
    merge_radices: Sequence[int] | str = "full"
    max_radix: int = 8
    machine: BlueGenePParams = field(default_factory=BlueGenePParams)
    validate: bool = False
    simplify_at_zero_persistence: bool = True

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.num_procs is not None and self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.persistence_threshold < 0:
            raise ValueError("persistence_threshold must be >= 0")
        if isinstance(self.merge_radices, str):
            if self.merge_radices not in ("full", "none"):
                raise ValueError(
                    "merge_radices must be 'full', 'none', or a sequence"
                )

    @property
    def resolved_num_procs(self) -> int:
        return self.num_procs if self.num_procs is not None else self.num_blocks

    def resolve_radices(self) -> list[int]:
        """Concrete list of merge-round radices."""
        if self.merge_radices == "none":
            return []
        if self.merge_radices == "full":
            if self.num_blocks == 1:
                return []
            return full_merge_radices(self.num_blocks, self.max_radix)
        return [int(r) for r in self.merge_radices]
