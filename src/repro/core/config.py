"""Pipeline configuration.

Bundles the tunable parameters the paper exposes: "blocking strategy,
merging strategy, and simplification level of the topology" (§I), plus
the virtual machine parameters of this reproduction and the
shared-memory execution backend of the compute stage.
"""

from __future__ import annotations

import dataclasses
import warnings
from collections.abc import Sequence
from dataclasses import dataclass, field

from typing import Any

from repro.core.options import (
    BACKEND_KNOB_KINDS,
    MERGE_EXECUTOR_KINDS,
    ExecutionOptions,
    canonical_fingerprint,
    validate_choice,
)
from repro.machine.bgp import BlueGenePParams
from repro.parallel.executor import RetryPolicy
from repro.parallel.radixk import MergeSchedule, full_merge_radices

__all__ = [
    "MERGE_EXECUTOR_KINDS",
    "ExecutionOptions",
    "PipelineConfig",
    "MergeSchedule",
]


@dataclass
class PipelineConfig:
    """Configuration of one parallel MS complex computation.

    Parameters
    ----------
    num_blocks:
        Number of blocks of the domain decomposition (power of two for
        the paper's bisection; otherwise pass explicit ``splits``).
    num_procs:
        Number of virtual processes; defaults to one block per process,
        the configuration the paper uses in all its studies.  May be
        smaller than ``num_blocks`` (block-cyclic assignment).
    splits:
        Optional explicit per-axis block counts overriding bisection.
    persistence_threshold:
        Per-block and per-merge simplification threshold (absolute
        function-value difference).  0 disables simplification except
        for the zero-persistence pairs produced by ties.
    merge_radices:
        ``"full"`` (merge to one block using the paper's guideline
        schedule), ``"none"`` (skip merging entirely), or an explicit
        sequence of radices in {2, 4, 8} for a partial merge.
    max_radix:
        Highest radix used when ``merge_radices="full"``.
    machine:
        Virtual Blue Gene/P parameters for the cost model.
    validate:
        Run structural invariant checks after every stage (slow; meant
        for tests and small volumes).
    simplify_at_zero_persistence:
        Cancel zero-persistence pairs even when the threshold is 0;
        matches the paper's handling of boundary artifacts, whose
        cancellation "directly connects important critical points in the
        interiors of neighboring blocks".
    workers:
        Width of the shared-memory worker pool the compute stage runs
        on.  ``1`` (default) computes blocks serially in-process; ``>1``
        fans blocks out over OS processes.  Results are bit-identical
        either way — the boundary-restricted pairing makes every block
        independent, so this is purely a scheduling choice.
    executor:
        Compute-stage backend: ``"auto"`` (worker pool exactly when
        ``workers > 1``), ``"serial"``, or ``"process"``.
    merge_executor:
        Merge-stage backend.  ``"serial"`` performs each group-root
        merge inside its virtual rank; ``"pool"`` precomputes each
        round's independent merges on the worker pool (the driver
        pre-pass pattern of the compute stage) and the ranks adopt the
        results; ``"auto"`` (default) pools exactly when the compute
        stage resolves to a process pool.  Deterministic merging makes
        the two backends bit-identical, virtual clock included.
    transport:
        How block vertex data reaches compute workers: ``"pickle"``
        ships each block's subarray by value inside its spec;
        ``"shm"`` publishes the volume once into a POSIX shared-memory
        segment and ships only a tiny handle per block (zero-copy,
        retries re-read from the segment); ``"mmap"`` (volume-file
        inputs only) ships just the file spec + box and workers
        subarray-read straight from disk — the driver never
        materializes the volume.  ``"auto"`` (default) picks ``"shm"``
        exactly when the compute stage runs on a process pool, and
        ``"mmap"`` whenever the input is a
        :class:`repro.io.volume.VolumeSpec`.  Results are bit-identical
        on every transport.
    kernel_backend:
        V-path tracing backend inside each block's compute: ``"dfs"``
        (the per-path depth-first tracer), ``"pointer"`` (the
        vectorized pointer-jumping tracer), or ``"auto"`` (default;
        pointer exactly when the block is large enough to amortize the
        whole-array passes, see :mod:`repro.morse.tracing`).  The
        constructed complex is bit-identical on either backend.
    block_timeout:
        Per-block compute timeout in seconds, enforced on the process
        backend; ``None`` (default) waits forever.  A timed-out block is
        retried like any other failure.
    max_retries:
        Extra attempts granted to a failed block (and to a failed root
        merge) before the fault-tolerance layer degrades or errors out.
    retry_backoff:
        Base of the exponential backoff slept between attempts of one
        block; ``0`` disables sleeping.
    degrade_on_failure:
        Fall back to the in-process serial executor — recording the
        event in the run's stats — when the worker pool is unhealthy,
        instead of failing the pipeline.
    max_pool_restarts:
        Worker-pool rebuilds (after worker deaths or a fully clogged
        pool) tolerated before declaring the pool unhealthy.
    hierarchy:
        Capture the cancellation hierarchy of every output block after
        the merge stage (an infinite-persistence sweep over a throwaway
        copy; the output complexes are untouched) and persist it in the
        ``.msc`` v2 hierarchy footer on result write, enabling
        re-simplification-free multiscale queries
        (:func:`repro.api.query`).  Off by default.
    merge_spill_budget_bytes:
        Resident-byte budget of the pooled merge stage's packed-blob
        spool.  ``None`` (default) never spills — every blob stays in
        driver memory, byte-for-byte the pre-spool pipeline.  A bound
        spills least-recently-used blobs to disk between radix rounds
        (see :class:`repro.io.spool.BlobSpool`), keeping peak driver
        RSS roughly flat as block count grows.  Pure scheduling:
        outputs are bit-identical at any budget.
    faults:
        Optional :class:`repro.parallel.faults.FaultPlan` injecting
        deterministic failures into the compute and merge stages — the
        chaos-testing hook; ``None`` in production use.
    trace:
        Record a span-based timeline of the run (driver, virtual-rank
        and pool-worker lanes) into ``result.stats.trace``, exportable
        as Chrome ``trace_event`` JSON (see :mod:`repro.obs`).  Off by
        default; pipeline outputs are bit-identical either way.
    metrics:
        Aggregate run metrics (counters / gauges / histograms, workers
        included) into ``result.stats.metrics`` (see
        :mod:`repro.obs.metrics`).  Off by default; outputs are
        bit-identical either way.

    The execution knobs (``workers`` through ``hierarchy``) may
    equivalently be passed grouped, as
    ``PipelineConfig(..., options=ExecutionOptions(...))``; passing a
    knob both ways is a :class:`TypeError`.  Deprecated keyword aliases
    ``persistence`` (for ``persistence_threshold``), ``blocks``
    (``num_blocks``) and ``procs`` (``num_procs``) are accepted with a
    :class:`DeprecationWarning` for one release; new code should use the
    canonical names or the :func:`repro.api.compute` facade.
    """

    num_blocks: int
    num_procs: int | None = None
    splits: tuple[int, int, int] | None = None
    persistence_threshold: float = 0.0
    merge_radices: Sequence[int] | str = "full"
    max_radix: int = 8
    machine: BlueGenePParams = field(default_factory=BlueGenePParams)
    validate: bool = False
    simplify_at_zero_persistence: bool = True
    workers: int = 1
    executor: str = "auto"
    merge_executor: str = "auto"
    transport: str = "auto"
    kernel_backend: str = "auto"
    block_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    degrade_on_failure: bool = True
    max_pool_restarts: int = 2
    hierarchy: bool = False
    merge_spill_budget_bytes: int | None = None
    faults: Any = None
    trace: bool = False
    metrics: bool = False

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.num_procs is not None and self.num_procs < 1:
            raise ValueError("num_procs must be >= 1")
        if self.persistence_threshold < 0:
            raise ValueError("persistence_threshold must be >= 0")
        if isinstance(self.merge_radices, str):
            if self.merge_radices not in ("full", "none"):
                raise ValueError(
                    "merge_radices must be 'full', 'none', or a sequence"
                )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.merge_spill_budget_bytes is not None:
            if (
                not isinstance(self.merge_spill_budget_bytes, int)
                or isinstance(self.merge_spill_budget_bytes, bool)
                or self.merge_spill_budget_bytes < 0
            ):
                raise ValueError(
                    "merge_spill_budget_bytes must be None or an int >= 0"
                )
        # all backend knobs fail early, at config construction, with
        # the uniform "choose one of {...}" error — never deep inside
        # the pipeline
        for name, kinds in BACKEND_KNOB_KINDS.items():
            validate_choice(name, getattr(self, name), kinds)
        # RetryPolicy validates the fault-tolerance knobs; fail at
        # config-construction time, not mid-pipeline
        self.retry_policy()

    def retry_policy(self) -> RetryPolicy:
        """The compute-stage retry policy these settings describe."""
        return RetryPolicy(
            block_timeout=self.block_timeout,
            max_retries=self.max_retries,
            backoff=self.retry_backoff,
            degrade_on_failure=self.degrade_on_failure,
            max_pool_restarts=self.max_pool_restarts,
        )

    @property
    def resolved_num_procs(self) -> int:
        return self.num_procs if self.num_procs is not None else self.num_blocks

    @property
    def resolved_executor(self) -> str:
        """Concrete executor kind after resolving ``"auto"``."""
        if self.executor == "auto":
            return "process" if self.workers > 1 else "serial"
        return self.executor

    @property
    def resolved_merge_executor(self) -> str:
        """Concrete merge-stage backend after resolving ``"auto"``.

        Pooling the merges pays off exactly when a worker pool exists;
        a serial compute stage keeps the in-rank merge path (which
        avoids any extra pack/unpack of the root between rounds).
        """
        if self.merge_executor == "auto":
            return (
                "pool" if self.resolved_executor == "process" else "serial"
            )
        return self.merge_executor

    @property
    def resolved_transport(self) -> str:
        """Concrete transport kind after resolving ``"auto"``, for an
        in-memory input.

        Shared memory pays off exactly when block data crosses a process
        boundary; in-process (serial) execution reads the driver's own
        arrays, so ``"auto"`` keeps the plain by-value path there.
        Volume-file inputs resolve differently — see
        :meth:`resolve_transport`.
        """
        return self.resolve_transport("memory")

    def resolve_transport(self, input_kind: str = "memory") -> str:
        """Concrete transport after resolving ``"auto"`` for an input.

        ``input_kind`` is ``"memory"`` (a vertex array / grid held by
        the driver) or ``"volume"`` (a :class:`repro.io.volume.VolumeSpec`
        file).  Impossible combinations fail here, readably, instead of
        silently falling back mid-pipeline:

        - ``shm`` + volume input: there is no in-memory array to
          publish — the out-of-core point is that the driver never
          holds one.  Use ``mmap`` (or ``auto``).
        - ``mmap`` + in-memory input: there is no file for workers to
          map.  Use ``shm``/``pickle`` (or ``auto``), or write the
          field with :func:`repro.io.volume.write_volume` first.
        """
        if input_kind not in ("memory", "volume"):
            raise ValueError(
                f"input_kind must be 'memory' or 'volume', got "
                f"{input_kind!r}"
            )
        if input_kind == "volume":
            if self.transport in ("auto", "mmap"):
                return "mmap"
            if self.transport == "shm":
                raise ValueError(
                    "transport 'shm' needs an in-memory input to publish; "
                    "a volume-file input streams blocks straight from "
                    "disk — use transport='mmap' (or 'auto'), or load "
                    "the volume yourself with repro.io.volume.read_volume"
                )
            return "pickle"
        if self.transport == "mmap":
            raise ValueError(
                "transport 'mmap' needs a volume-file input "
                "(repro.io.volume.VolumeSpec) for workers to map; "
                "an in-memory field uses 'pickle' or 'shm' (or 'auto'), "
                "or write it out first with repro.io.volume.write_volume"
            )
        if self.transport == "auto":
            return "shm" if self.resolved_executor == "process" else "pickle"
        return self.transport

    @property
    def execution_options(self) -> ExecutionOptions:
        """The execution knobs of this config, as one grouped value.

        ``kernel_backend="auto"`` is *not* resolved here: the pointer /
        dfs choice is made per block, by size, inside
        :func:`repro.morse.tracing.extract_ms_complex`.
        """
        return ExecutionOptions(
            **{
                name: getattr(self, name)
                for name in _OPTION_FIELD_NAMES
            }
        )

    def result_fingerprint(self) -> str:
        """Content hash of everything that determines the *output*.

        This is the config half of the service cache key (the other
        half is the volume content hash, see
        :func:`repro.io.volume.content_hash`).  It covers the fields
        the computed complex depends on — decomposition, persistence
        threshold, the *resolved* merge schedule, tie handling — plus
        the additive ``hierarchy`` artifact flag, and deliberately
        excludes every pure-scheduling knob: results are bit-identical
        across workers/executors/transports/kernel backends (the
        invariant the golden tests pin), so a request computed with
        ``workers=1`` must be a cache hit for the same volume requested
        with ``workers=8``.

        The merge schedule is fingerprinted resolved
        (:meth:`resolve_radices`), so equivalent spellings —
        ``merge_radices="full", max_radix=2`` vs the explicit
        ``[2, 2, 2]`` on 8 blocks — key identically.
        """
        return canonical_fingerprint(
            "pipeline-result",
            {
                "num_blocks": self.num_blocks,
                "num_procs": self.resolved_num_procs,
                "splits": list(self.splits) if self.splits else None,
                "persistence_threshold": float(self.persistence_threshold),
                "radices": self.resolve_radices(),
                "simplify_at_zero_persistence": (
                    self.simplify_at_zero_persistence
                ),
                "hierarchy": self.hierarchy,
            },
        )

    def fingerprint(self) -> str:
        """Content hash over the full configuration, execution included.

        Combines :meth:`result_fingerprint` with the
        :meth:`~repro.core.options.ExecutionOptions.fingerprint` of the
        grouped execution knobs: equal configs spelled any way (flat
        keywords, ``options=``, CLI flags) hash identically, and any
        knob change — scheduling or not — changes the digest.  Use
        :meth:`result_fingerprint` for cache keying and this for exact
        run-configuration identity (journals, provenance records).
        """
        return canonical_fingerprint(
            "pipeline-config",
            {
                "result": self.result_fingerprint(),
                "options": self.execution_options.fingerprint(),
                "validate": self.validate,
            },
        )

    def resolve_radices(self) -> list[int]:
        """Concrete list of merge-round radices."""
        if self.merge_radices == "none":
            return []
        if self.merge_radices == "full":
            if self.num_blocks == 1:
                return []
            return full_merge_radices(self.num_blocks, self.max_radix)
        return [int(r) for r in self.merge_radices]


#: deprecated keyword alias -> canonical field (one-release shim)
_FIELD_ALIASES = {
    "persistence": "persistence_threshold",
    "blocks": "num_blocks",
    "procs": "num_procs",
}

#: PipelineConfig fields ExecutionOptions groups (names match 1:1)
_OPTION_FIELD_NAMES = tuple(
    f.name for f in dataclasses.fields(ExecutionOptions)
)

_dataclass_init = PipelineConfig.__init__


def _init_with_aliases(self, *args, **kwargs):
    options = kwargs.pop("options", None)
    if options is not None:
        if not isinstance(options, ExecutionOptions):
            raise TypeError(
                "PipelineConfig(options=...) expects an "
                f"ExecutionOptions, got {type(options).__name__}"
            )
        for name in _OPTION_FIELD_NAMES:
            if name in kwargs:
                raise TypeError(
                    f"PipelineConfig() got both options= and the flat "
                    f"keyword {name!r}"
                )
            kwargs[name] = getattr(options, name)
    for alias, canonical in _FIELD_ALIASES.items():
        if alias in kwargs:
            if canonical in kwargs:
                raise TypeError(
                    f"PipelineConfig() got both {alias!r} and its "
                    f"canonical name {canonical!r}"
                )
            warnings.warn(
                f"PipelineConfig({alias}=...) is deprecated; "
                f"use {canonical}=... (or the repro.api.compute facade)",
                DeprecationWarning,
                stacklevel=2,
            )
            kwargs[canonical] = kwargs.pop(alias)
    _dataclass_init(self, *args, **kwargs)


_init_with_aliases.__doc__ = _dataclass_init.__doc__
_init_with_aliases.__wrapped__ = _dataclass_init
PipelineConfig.__init__ = _init_with_aliases
