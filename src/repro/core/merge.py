"""Per-round merge computation at group roots (paper §IV-F).

The three steps of the merge stage:

1. *Preparing for communication* (§IV-F1): each member compacts its
   simplified complex (dead hierarchy levels dropped, composite geometry
   flattened) and serializes it; node addresses are already global.
2. *Communication* (§IV-F2): members send their complexes to the group
   root (the scheduler delivers; the machine model prices the bytes).
3. *Merge computation* (§IV-F3): the root glues each incoming complex at
   shared-boundary nodes, updates node boundary flags against the cut
   planes that remain after the round, re-simplifies the newly interior
   nodes, and compacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.glue import GlueStats, glue_into
from repro.io.mscfile import deserialize_payload, serialize_payload
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.validate import assert_ms_complex_valid

__all__ = ["MergeOutcome", "pack_complex", "unpack_complex", "perform_merge"]


@dataclass
class MergeOutcome:
    """Result counters of one root merge."""

    glue: GlueStats
    boundary_nodes_freed: int
    cancellations: int
    nodes_after: int
    arcs_after: int


def pack_complex(msc: MorseSmaleComplex) -> bytes:
    """Serialize a compacted complex for communication."""
    return serialize_payload(msc.to_payload())


def unpack_complex(blob: bytes) -> MorseSmaleComplex:
    """Inverse of :func:`pack_complex`."""
    return MorseSmaleComplex.from_payload(deserialize_payload(blob))


def perform_merge(
    root: MorseSmaleComplex,
    incoming: list[MorseSmaleComplex],
    remaining_cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    persistence_threshold: float,
    validate: bool = False,
) -> MergeOutcome:
    """Glue ``incoming`` complexes into ``root`` and re-simplify.

    ``remaining_cut_planes`` are the decomposition cut planes that still
    separate distinct merged blocks *after* this round; nodes no longer
    on any of them become interior and cancellable.
    """
    addr_index = root.address_index()
    glue_total = GlueStats()
    for other in incoming:
        glue_total += glue_into(root, other, addr_index)

    freed = root.update_boundary_flags(remaining_cut_planes)
    cancels = simplify_ms_complex(
        root, persistence_threshold, respect_boundary=True
    )
    root.compact()
    if validate:
        assert_ms_complex_valid(root)
    return MergeOutcome(
        glue=glue_total,
        boundary_nodes_freed=freed,
        cancellations=len(cancels),
        nodes_after=root.num_alive_nodes(),
        arcs_after=root.num_alive_arcs(),
    )
