"""Per-round merge computation at group roots (paper §IV-F).

The three steps of the merge stage:

1. *Preparing for communication* (§IV-F1): each member compacts its
   simplified complex (dead hierarchy levels dropped, composite geometry
   flattened) and serializes it; node addresses are already global.
2. *Communication* (§IV-F2): members send their complexes to the group
   root (the scheduler delivers; the machine model prices the bytes).
3. *Merge computation* (§IV-F3): the root glues each incoming complex at
   shared-boundary nodes, updates node boundary flags against the cut
   planes that remain after the round, re-simplifies the newly interior
   nodes, and compacts.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass

import numpy as np

from typing import Callable

from repro.core.glue import GlueStats, glue_into
from repro.io.mscfile import deserialize_payload, serialize_payload
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.validate import assert_ms_complex_valid
from repro.obs.trace import get_tracer
from repro.parallel.executor import FaultToleranceError

logger = logging.getLogger(__name__)

__all__ = [
    "MergeOutcome",
    "MergeStageError",
    "pack_complex",
    "unpack_complex",
    "perform_merge",
    "merge_with_retries",
]


class MergeStageError(FaultToleranceError):
    """A root merge could not be completed within the retry budget."""


@dataclass
class MergeOutcome:
    """Result counters of one root merge."""

    glue: GlueStats
    boundary_nodes_freed: int
    cancellations: int
    nodes_after: int
    arcs_after: int


def pack_complex(msc: MorseSmaleComplex) -> bytes:
    """Serialize a compacted complex for communication."""
    return serialize_payload(msc.to_payload())


def unpack_complex(blob: bytes) -> MorseSmaleComplex:
    """Inverse of :func:`pack_complex`."""
    return MorseSmaleComplex.from_payload(deserialize_payload(blob))


def perform_merge(
    root: MorseSmaleComplex,
    incoming: list[MorseSmaleComplex],
    remaining_cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    persistence_threshold: float,
    validate: bool = False,
) -> MergeOutcome:
    """Glue ``incoming`` complexes into ``root`` and re-simplify.

    ``remaining_cut_planes`` are the decomposition cut planes that still
    separate distinct merged blocks *after* this round; nodes no longer
    on any of them become interior and cancellable.
    """
    addr_index = root.address_index()
    glue_total = GlueStats()
    for other in incoming:
        glue_total += glue_into(root, other, addr_index)

    freed = root.update_boundary_flags(remaining_cut_planes)
    cancels = simplify_ms_complex(
        root, persistence_threshold, respect_boundary=True
    )
    root.compact()
    if validate:
        assert_ms_complex_valid(root)
    return MergeOutcome(
        glue=glue_total,
        boundary_nodes_freed=freed,
        cancellations=len(cancels),
        nodes_after=root.num_alive_nodes(),
        arcs_after=root.num_alive_arcs(),
    )


def merge_with_retries(
    root: MorseSmaleComplex,
    incoming_blobs: list[bytes],
    remaining_cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    persistence_threshold: float,
    *,
    validate: bool = False,
    max_retries: int = 2,
    fault_hook: Callable[[int, list[bytes]], list[bytes]] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[MorseSmaleComplex, MergeOutcome, int]:
    """Fault-tolerant :func:`perform_merge`: retry from a pristine snapshot.

    :func:`perform_merge` mutates the root in place, so a crash mid-merge
    leaves it unusable.  This wrapper snapshots the root (the same packed
    bytes the merge rounds already exchange) before the first attempt;
    when an attempt fails — a corrupted member blob that will not unpack,
    or an error inside the merge computation — the root is restored from
    the snapshot (cancellation hierarchy included) and the merge retried
    with the original, uncorrupted blobs, up to ``max_retries`` times.
    A successful retry is therefore bit-identical to a fault-free merge.

    ``fault_hook`` is the chaos-testing injection point (see
    :meth:`repro.parallel.faults.FaultPlan.merge_hook`): called with
    ``(attempt, blobs)`` before each attempt, it may raise or return a
    corrupted blob list.  ``on_retry`` is notified of every failed
    attempt for stats accounting.

    Returns ``(root, outcome, retries)`` where ``root`` is the merged
    complex (a restored copy if any attempt failed) and ``retries`` how
    many attempts failed before the successful one.  Raises
    :class:`MergeStageError` with a readable message when the budget is
    exhausted.
    """
    snapshot = pack_complex(root)
    saved_hierarchy = list(root.hierarchy)
    attempt = 0
    while True:
        try:
            blobs = list(incoming_blobs)
            if fault_hook is not None:
                blobs = fault_hook(attempt, blobs)
            incoming = [unpack_complex(b) for b in blobs]
            outcome = perform_merge(
                root,
                incoming,
                remaining_cut_planes,
                persistence_threshold,
                validate=validate,
            )
            return root, outcome, attempt
        except Exception as exc:
            if attempt >= max_retries:
                raise MergeStageError(
                    f"merge failed after {attempt + 1} attempt(s); "
                    f"last error: {type(exc).__name__}: {exc}"
                ) from exc
            logger.warning(
                "merge attempt %d failed (%s: %s); restoring root "
                "snapshot and retrying",
                attempt + 1, type(exc).__name__, exc,
            )
            get_tracer().event(
                "merge.retry", cat="merge",
                attempt=attempt, error=type(exc).__name__,
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            root = unpack_complex(snapshot)
            root.hierarchy.extend(saved_hierarchy)
            attempt += 1
