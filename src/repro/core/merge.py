"""Per-round merge computation at group roots (paper §IV-F).

The three steps of the merge stage:

1. *Preparing for communication* (§IV-F1): each member compacts its
   simplified complex (dead hierarchy levels dropped, composite geometry
   flattened) and serializes it; node addresses are already global.
2. *Communication* (§IV-F2): members send their complexes to the group
   root (the scheduler delivers; the machine model prices the bytes).
3. *Merge computation* (§IV-F3): the root glues each incoming complex at
   shared-boundary nodes, updates node boundary flags against the cut
   planes that remain after the round, re-simplifies the newly interior
   nodes, and compacts.

Within one radix-k round the per-root merges are independent, so the
pipeline can dispatch them to a worker pool: :class:`MergeSpec` is the
picklable work order (root and member blobs plus round parameters),
:func:`merge_task` the pure worker function, and :class:`MergePayload`
the result shipped back (merged blob, outcome counters, this merge's
cancellation records, a CRC for corruption detection).
"""

from __future__ import annotations

import logging
import zlib

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from typing import Any, Callable

from repro.core.glue import AddressIndex, GlueStats, glue_into
from repro.io.mscfile import deserialize_payload, serialize_payload
from repro.io.spool import SpilledBlobRef, blob_bytes
from repro.morse.msc import Cancellation, MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.validate import assert_ms_complex_valid
from repro.obs.trace import Tracer, get_tracer
from repro.parallel.executor import CorruptPayloadError, FaultToleranceError

logger = logging.getLogger(__name__)

__all__ = [
    "MergeOutcome",
    "MergeSpec",
    "MergePayload",
    "MergeStageError",
    "merge_task",
    "pack_complex",
    "unpack_complex",
    "perform_merge",
    "merge_with_retries",
    "validate_merge_payload",
]


class MergeStageError(FaultToleranceError):
    """A root merge could not be completed within the retry budget."""


@dataclass
class MergeOutcome:
    """Result counters of one root merge."""

    glue: GlueStats
    boundary_nodes_freed: int
    cancellations: int
    nodes_after: int
    arcs_after: int


def pack_complex(msc: MorseSmaleComplex) -> bytes:
    """Serialize a compacted complex for communication."""
    return serialize_payload(msc.to_payload())


def unpack_complex(blob) -> MorseSmaleComplex:
    """Inverse of :func:`pack_complex`.

    Accepts packed ``bytes`` or a :class:`repro.io.spool.SpilledBlobRef`
    handle — a spilled blob is materialized from its spool file first,
    so every consumer of the packed-blob currency (pooled merge
    workers, retry restores, the write stage) reads through the spool
    transparently.
    """
    return MorseSmaleComplex.from_payload(deserialize_payload(blob_bytes(blob)))


def perform_merge(
    root: MorseSmaleComplex,
    incoming: list[MorseSmaleComplex],
    remaining_cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    persistence_threshold: float,
    validate: bool = False,
    incremental: bool = True,
) -> MergeOutcome:
    """Glue ``incoming`` complexes into ``root`` and re-simplify.

    ``remaining_cut_planes`` are the decomposition cut planes that still
    separate distinct merged blocks *after* this round; nodes no longer
    on any of them become interior and cancellable.

    With ``incremental=True`` (the default) the re-simplification heap
    is seeded only from nodes the merge actually disturbed — glued,
    matched, unghosted, and boundary-freed nodes — instead of re-heaping
    every living arc.  This is exact (identical hierarchy and surviving
    complex) *provided* the root and every incoming complex were
    previously simplified at this same ``persistence_threshold`` with
    ``respect_boundary=True``, which holds for every pipeline merge
    round over simplified blocks; pass ``incremental=False`` when the
    inputs have never been simplified at this threshold (e.g. a
    zero-persistence compute stage that skipped block simplification).
    """
    addr_index = AddressIndex.from_complex(root)
    glue_total = GlueStats()
    touched: set[int] | None = set() if incremental else None
    for other in incoming:
        glue_total += glue_into(root, other, addr_index, touched=touched)

    freed = root.update_boundary_flags(remaining_cut_planes, return_ids=True)
    if touched is not None:
        touched.update(freed)
    cancels = simplify_ms_complex(
        root, persistence_threshold, respect_boundary=True,
        seed_nodes=touched,
    )
    root.compact()
    if validate:
        assert_ms_complex_valid(root)
    return MergeOutcome(
        glue=glue_total,
        boundary_nodes_freed=len(freed),
        cancellations=len(cancels),
        nodes_after=root.num_alive_nodes(),
        arcs_after=root.num_alive_arcs(),
    )


def merge_with_retries(
    root: MorseSmaleComplex,
    incoming_blobs: list[bytes],
    remaining_cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray],
    persistence_threshold: float,
    *,
    validate: bool = False,
    max_retries: int = 2,
    incremental: bool = True,
    fault_hook: Callable[[int, list[bytes]], list[bytes]] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    root_blob: bytes | SpilledBlobRef | None = None,
) -> tuple[MorseSmaleComplex, MergeOutcome, int]:
    """Fault-tolerant :func:`perform_merge`: retry from a pristine snapshot.

    :func:`perform_merge` mutates the root in place, so a crash mid-merge
    leaves it unusable.  The snapshot needed to recover is taken
    *lazily*: when the caller already holds the root's packed bytes —
    or a spilled :class:`~repro.io.spool.SpilledBlobRef` to them — it
    passes them as ``root_blob`` (free; a ref is only read back from
    disk if a restore actually happens), otherwise a snapshot is packed
    up front only when a ``fault_hook`` is installed (chaos runs).  On
    the no-fault fast path nothing is packed at all — member blobs are
    unpacked *before* the root is touched, so the only failures that can
    occur with a pristine root (a corrupted blob that will not unpack)
    retry without any restore.  When an attempt fails after mutation
    began, the root is restored from the snapshot (cancellation
    hierarchy included) and the merge retried with the original,
    uncorrupted blobs, up to ``max_retries`` times.  A successful retry
    is therefore bit-identical to a fault-free merge.

    ``fault_hook`` is the chaos-testing injection point (see
    :meth:`repro.parallel.faults.FaultPlan.merge_hook`): called with
    ``(attempt, blobs)`` before each attempt, it may raise or return a
    corrupted blob list.  ``on_retry`` is notified of every failed
    attempt for stats accounting.  ``incremental`` is forwarded to
    :func:`perform_merge`.

    Returns ``(root, outcome, retries)`` where ``root`` is the merged
    complex (a restored copy if any attempt failed) and ``retries`` how
    many attempts failed before the successful one.  Raises
    :class:`MergeStageError` with a readable message when the budget is
    exhausted.
    """
    snapshot = root_blob
    if snapshot is None and fault_hook is not None:
        snapshot = pack_complex(root)
    saved_hierarchy = list(root.hierarchy)
    attempt = 0
    mutated = False
    while True:
        try:
            blobs = list(incoming_blobs)
            if fault_hook is not None:
                blobs = fault_hook(attempt, blobs)
            incoming = [unpack_complex(b) for b in blobs]
            mutated = True
            outcome = perform_merge(
                root,
                incoming,
                remaining_cut_planes,
                persistence_threshold,
                validate=validate,
                incremental=incremental,
            )
            return root, outcome, attempt
        except Exception as exc:
            unrecoverable = mutated and snapshot is None
            if attempt >= max_retries or unrecoverable:
                detail = (
                    "; root mutated with no snapshot to restore"
                    if unrecoverable and attempt < max_retries
                    else ""
                )
                raise MergeStageError(
                    f"merge failed after {attempt + 1} attempt(s){detail}; "
                    f"last error: {type(exc).__name__}: {exc}"
                ) from exc
            logger.warning(
                "merge attempt %d failed (%s: %s); restoring root "
                "snapshot and retrying",
                attempt + 1, type(exc).__name__, exc,
            )
            get_tracer().event(
                "merge.retry", cat="merge",
                attempt=attempt, error=type(exc).__name__,
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            if mutated:
                root = unpack_complex(snapshot)
                root.hierarchy.extend(saved_hierarchy)
                mutated = False
            attempt += 1


@dataclass(frozen=True)
class MergeSpec:
    """Picklable work order for one pooled group-root merge.

    Blob fields hold either packed bytes or picklable
    :class:`~repro.io.spool.SpilledBlobRef` handles; a worker
    materializes refs from their spool files on unpack, so specs stay
    tiny however large the complexes are.
    """

    round_idx: int
    root_block: int
    root_blob: bytes | SpilledBlobRef
    member_blobs: tuple[bytes | SpilledBlobRef, ...]
    #: cut planes remaining *after* this round, one array per axis
    cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray]
    persistence_threshold: float
    incremental: bool = True
    validate: bool = False
    trace: bool = False

    @property
    def block_id(self) -> tuple[int, int]:
        """Executor bookkeeping label — ``(round, root block)``."""
        return (self.round_idx, self.root_block)


@dataclass
class MergePayload:
    """Result of one pooled merge, shipped back from a worker."""

    round_idx: int
    root_block: int
    #: the merged, compacted, re-packed root complex
    blob: bytes
    outcome: MergeOutcome
    #: cancellation records of *this* merge only (packed blobs carry no
    #: hierarchy; the driver accumulates per-root across rounds)
    hierarchy: list[Cancellation]
    #: worker-measured wall seconds of the merge computation proper
    real_seconds: float
    checksum: int = 0
    worker_pid: int = 0
    trace_events: list[Any] = field(default_factory=list)


def merge_task(spec: MergeSpec) -> MergePayload:
    """Perform one root merge from packed blobs (pure and pickle-safe).

    The deterministic function behind the pooled merge stage: unpack the
    root and member blobs, :func:`perform_merge`, re-pack.  Because the
    inputs are immutable bytes, an executor-level retry simply reruns
    this function — a fresh unpack *is* the pristine snapshot, so no
    explicit restore path is needed.
    """
    tracer = Tracer(enabled=True)
    ambient = tracer.installed() if spec.trace else nullcontext()
    with ambient:
        with tracer.span(
            "merge.block", cat="merge",
            round=spec.round_idx, root=spec.root_block,
        ):
            root = unpack_complex(spec.root_blob)
            incoming = [unpack_complex(b) for b in spec.member_blobs]
            with tracer.span("merge.compute", cat="merge") as work:
                outcome = perform_merge(
                    root,
                    incoming,
                    spec.cut_planes,
                    spec.persistence_threshold,
                    validate=spec.validate,
                    incremental=spec.incremental,
                )
            blob = pack_complex(root)
    return MergePayload(
        round_idx=spec.round_idx,
        root_block=spec.root_block,
        blob=blob,
        outcome=outcome,
        hierarchy=list(root.hierarchy),
        real_seconds=work.duration,
        checksum=zlib.crc32(blob),
        worker_pid=tracer.pid,
        trace_events=tracer.events if spec.trace else [],
    )


def validate_merge_payload(spec: MergeSpec, payload: MergePayload) -> None:
    """Executor validator: reject mismatched or corrupted merge results."""
    if not isinstance(payload, MergePayload):
        raise CorruptPayloadError(
            f"merge {spec.block_id}: expected a MergePayload, got "
            f"{type(payload).__name__}"
        )
    if (payload.round_idx, payload.root_block) != spec.block_id:
        raise CorruptPayloadError(
            f"merge {spec.block_id}: payload labeled "
            f"({payload.round_idx}, {payload.root_block})"
        )
    if zlib.crc32(payload.blob) != payload.checksum:
        raise CorruptPayloadError(
            f"merge {spec.block_id}: blob checksum mismatch"
        )
