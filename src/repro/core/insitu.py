"""In-situ analysis mode (paper §VII-B, future work).

"We plan to embed our algorithm into the S3D combustion code and
generate parallel MS complexes in situ with combustion simulations."

:class:`InSituAnalyzer` realizes that plan within this reproduction's
virtual environment: the analyzer is constructed once per simulation and
fed one field per timestep.  Each step runs the full parallel pipeline
on the current data and appends a compact record — feature counts, stage
times, output size — to a time series the scientist can monitor while
the simulation runs.

Since the streaming rework the analyzer is backed by a persistent
:class:`~repro.core.session.PipelineSession`: the worker pools, the
shared-memory slot, the decomposition/merge-schedule plan, and the
warmed structure tables are created on the first step and *reused* by
every later one — the amortization a real in-situ coupling lives on.
Steps may also be raw volume files (:class:`~repro.io.volume.VolumeSpec`),
in which case the ``mmap`` transport streams blocks straight from disk
and the driver never materializes the volume.  Call :meth:`close` (or
use the analyzer as a context manager) to release the pools; analyzers
that are only ever constructed and stepped hold no OS resources until
their first step, and each result is bit-identical to a one-shot
``pipeline.run()`` of the same field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.analysis.features import significant_extrema
from repro.core.config import PipelineConfig
from repro.core.result import PipelineResult
from repro.core.session import PipelineSession
from repro.io.volume import VolumeSpec

__all__ = ["InSituAnalyzer", "InSituStepRecord"]


@dataclass
class InSituStepRecord:
    """One timestep's analysis summary."""

    step: int
    time: float
    node_counts: tuple[int, int, int, int]
    significant_minima: int
    significant_maxima: int
    output_bytes: int
    virtual_seconds: float
    real_seconds: float


@dataclass
class InSituAnalyzer:
    """Run the parallel MS complex pipeline once per simulation step.

    Parameters
    ----------
    config:
        Pipeline configuration shared by all timesteps.
    feature_min_value, feature_max_value:
        Value filters defining "significant" extrema for the monitoring
        time series (e.g. mixture-fraction ceilings for dissipation
        elements, density floors for spikes).
    """

    config: PipelineConfig
    feature_min_value: float | None = None
    feature_max_value: float | None = None
    history: list[InSituStepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._session = PipelineSession(self.config)

    @property
    def session(self) -> PipelineSession:
        """The persistent session backing this analyzer."""
        return self._session

    def step(
        self,
        values: np.ndarray | VolumeSpec,
        time: float | None = None,
    ) -> tuple[InSituStepRecord, PipelineResult]:
        """Analyze one timestep; returns (record, full pipeline result).

        ``values`` may be an in-memory vertex array or a
        :class:`~repro.io.volume.VolumeSpec` pointing at a raw volume
        file on disk (streamed out-of-core via the ``mmap`` transport).
        """
        result = self._session.run(values)
        step_idx = len(self.history)
        counts = result.combined_node_counts()
        minima = maxima = 0
        for msc in result.output_blocks.values():
            minima += len(
                significant_extrema(
                    msc, 0,
                    min_value=self.feature_min_value,
                    max_value=self.feature_max_value,
                )
            )
            maxima += len(
                significant_extrema(
                    msc, 3,
                    min_value=self.feature_min_value,
                    max_value=self.feature_max_value,
                )
            )
        record = InSituStepRecord(
            step=step_idx,
            time=float(time) if time is not None else float(step_idx),
            node_counts=counts,
            significant_minima=minima,
            significant_maxima=maxima,
            output_bytes=result.stats.output_bytes,
            virtual_seconds=result.stats.total_time,
            real_seconds=result.stats.real_seconds_total,
        )
        self.history.append(record)
        return record, result

    def stream(
        self,
        steps: Iterable[np.ndarray | VolumeSpec | tuple],
    ) -> Iterator[tuple[InSituStepRecord, PipelineResult]]:
        """Analyze a whole time series lazily, one step per item.

        Each item is a field / :class:`VolumeSpec`, or a ``(time,
        field)`` pair.  Yields ``(record, result)`` as each step
        completes, so a monitoring loop can consume results while the
        simulation produces the next step.
        """
        for item in steps:
            if (
                isinstance(item, tuple)
                and len(item) == 2
                and np.isscalar(item[0])
            ):
                time, values = item
                yield self.step(values, time=float(time))
            else:
                yield self.step(item)

    def close(self) -> None:
        """Release the session's pools and shm slot (idempotent)."""
        self._session.close()

    def __enter__(self) -> "InSituAnalyzer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def feature_timeseries(self) -> dict[str, list[float]]:
        """Time series of the monitored quantities across steps."""
        return {
            "time": [r.time for r in self.history],
            "minima": [float(r.significant_minima) for r in self.history],
            "maxima": [float(r.significant_maxima) for r in self.history],
            "nodes": [float(sum(r.node_counts)) for r in self.history],
            "output_bytes": [
                float(r.output_bytes) for r in self.history
            ],
            "virtual_seconds": [
                r.virtual_seconds for r in self.history
            ],
        }
