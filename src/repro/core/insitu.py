"""In-situ analysis mode (paper §VII-B, future work).

"We plan to embed our algorithm into the S3D combustion code and
generate parallel MS complexes in situ with combustion simulations."

:class:`InSituAnalyzer` realizes that plan within this reproduction's
virtual environment: the analyzer is constructed once per simulation
(fixing the domain decomposition, merge schedule, and machine model —
exactly what an in-situ coupling would reuse across timesteps), then fed
one field per timestep.  Each step runs the full parallel pipeline on
the current data and appends a compact record — feature counts, stage
times, output size — to a time series the scientist can monitor while
the simulation runs.  Amortized costs (decomposition, schedule, group
tables) are paid once, as they would be in a real coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.features import significant_extrema
from repro.core.config import PipelineConfig
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.result import PipelineResult

__all__ = ["InSituAnalyzer", "InSituStepRecord"]


@dataclass
class InSituStepRecord:
    """One timestep's analysis summary."""

    step: int
    time: float
    node_counts: tuple[int, int, int, int]
    significant_minima: int
    significant_maxima: int
    output_bytes: int
    virtual_seconds: float
    real_seconds: float


@dataclass
class InSituAnalyzer:
    """Run the parallel MS complex pipeline once per simulation step.

    Parameters
    ----------
    config:
        Pipeline configuration shared by all timesteps.
    feature_min_value, feature_max_value:
        Value filters defining "significant" extrema for the monitoring
        time series (e.g. mixture-fraction ceilings for dissipation
        elements, density floors for spikes).
    """

    config: PipelineConfig
    feature_min_value: float | None = None
    feature_max_value: float | None = None
    history: list[InSituStepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._pipeline = ParallelMSComplexPipeline(self.config)

    def step(
        self, values: np.ndarray, time: float | None = None
    ) -> tuple[InSituStepRecord, PipelineResult]:
        """Analyze one timestep; returns (record, full pipeline result)."""
        result = self._pipeline.run(values)
        step_idx = len(self.history)
        counts = result.combined_node_counts()
        minima = maxima = 0
        for msc in result.output_blocks.values():
            minima += len(
                significant_extrema(
                    msc, 0,
                    min_value=self.feature_min_value,
                    max_value=self.feature_max_value,
                )
            )
            maxima += len(
                significant_extrema(
                    msc, 3,
                    min_value=self.feature_min_value,
                    max_value=self.feature_max_value,
                )
            )
        record = InSituStepRecord(
            step=step_idx,
            time=float(time) if time is not None else float(step_idx),
            node_counts=counts,
            significant_minima=minima,
            significant_maxima=maxima,
            output_bytes=result.stats.output_bytes,
            virtual_seconds=result.stats.total_time,
            real_seconds=result.stats.real_seconds_total,
        )
        self.history.append(record)
        return record, result

    def feature_timeseries(self) -> dict[str, list[float]]:
        """Time series of the monitored quantities across steps."""
        return {
            "time": [r.time for r in self.history],
            "minima": [float(r.significant_minima) for r in self.history],
            "maxima": [float(r.significant_maxima) for r in self.history],
            "nodes": [float(sum(r.node_counts)) for r in self.history],
            "output_bytes": [
                float(r.output_bytes) for r in self.history
            ],
            "virtual_seconds": [
                r.virtual_seconds for r in self.history
            ],
        }
