"""Global persistence simplification (paper §VII-B, future work).

"In the longer term, we plan to experiment with global persistence
simplification in the context of our parallel structure.  We anticipate
that this can be performed using a series of nearest-neighbor
communication operations.  This will allow us to further reduce the
size of the output data and to reduce the complexity of the resulting
MS complex."

This module implements that plan on the output blocks of a *partial*
merge.  The obstacle the paper identifies is that per-block
simplification must leave every shared-boundary node uncancelled; after
a partial merge those "handles" remain in the output.  The algorithm
here resolves them with red-black nearest-neighbor sweeps:

for each axis, alternating pair parity:
    the right block of each adjacent pair sends its complex to the left
    block's owner; the owner glues the two complexes, *unprotects* the
    single cut plane between them (all other remaining cut planes stay
    protected), re-simplifies, splits the complex back at that plane,
    and returns the right half.

Splitting introduces **ghost nodes**: a cross-boundary cancellation can
create an arc whose endpoints lie in different halves; the half that
keeps the arc (chosen by the upper endpoint, ties by the lower) stores
the remote endpoint as a ghost placeholder that is never cancelled
locally and never counted as a local feature.  Ghosts reconcile with
their real copies if blocks are merged later.

One full sweep (three axes × two parities) cancels every
below-threshold boundary pair whose partner lies in the adjacent block;
additional sweeps propagate across chains of blocks.  The result
approaches the fully merged complex's simplification level while the
data stays distributed — exactly the output-size reduction the paper
anticipated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.hierarchy import MSComplexHierarchy
from repro.core.glue import glue_into
from repro.core.merge import pack_complex, unpack_complex
from repro.core.result import PipelineResult
from repro.machine.costmodel import CostModel, MergeWork
from repro.mesh.addressing import address_to_coords
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.parallel.runtime import VirtualMPI

__all__ = [
    "GlobalSimplifyStats",
    "global_persistence_simplification",
    "split_complex",
]


@dataclass
class GlobalSimplifyStats:
    """Outcome of a global simplification pass."""

    sweeps: int = 0
    pair_merges: int = 0
    cancellations: int = 0
    message_bytes: int = 0
    nodes_before: int = 0
    nodes_after: int = 0
    output_bytes_before: int = 0
    output_bytes_after: int = 0
    virtual_seconds: float = 0.0
    ghost_nodes: int = 0

    def describe(self) -> str:
        return (
            f"{self.sweeps} sweep(s), {self.pair_merges} pair merges, "
            f"{self.cancellations} cancellations; nodes "
            f"{self.nodes_before} -> {self.nodes_after}, output "
            f"{self.output_bytes_before} -> {self.output_bytes_after} "
            f"bytes, {self.ghost_nodes} ghosts, "
            f"{self.message_bytes} message bytes, "
            f"{self.virtual_seconds:.3f} virtual s"
        )


def split_complex(
    msc: MorseSmaleComplex, axis: int, plane: int
) -> tuple[MorseSmaleComplex, MorseSmaleComplex]:
    """Split a compacted complex at a refined cut plane.

    Nodes strictly below/above the plane go to the low/high half; nodes
    on the plane are replicated into both (the shared-layer convention
    of the paper's output format).  Each living arc is assigned to
    exactly one half — the side of its upper endpoint, tie-broken by the
    lower endpoint; arcs lying entirely in the plane are replicated.
    Remote endpoints become ghost placeholders.
    """
    gdims = msc.global_refined_dims
    cut_vertex = plane // 2
    low = MorseSmaleComplex(
        gdims,
        msc.region_lo,
        tuple(
            (cut_vertex + 1) if a == axis else h
            for a, h in enumerate(msc.region_hi)
        ),
    )
    high = MorseSmaleComplex(
        gdims,
        tuple(
            cut_vertex if a == axis else l
            for a, l in enumerate(msc.region_lo)
        ),
        msc.region_hi,
    )
    low.hierarchy = list(msc.hierarchy)

    def node_side(nid: int) -> int:
        coords = address_to_coords(msc.node_address[nid], gdims)
        c = coords[axis]
        return -1 if c < plane else (1 if c > plane else 0)

    maps: dict[int, dict[int, int]] = {-1: {}, 1: {}, 0: {}}

    def ensure(half: MorseSmaleComplex, side_key: int, nid: int,
               ghost: bool) -> int:
        table = maps[side_key]
        got = table.get(nid)
        if got is not None:
            return got
        new = half.add_node(
            msc.node_address[nid],
            msc.node_index[nid],
            msc.node_value[nid],
            boundary=msc.node_boundary[nid] or (node_side(nid) == 0),
            ghost=ghost or msc.node_ghost[nid],
        )
        table[nid] = new
        return new

    halves = {-1: low, 1: high}
    for aid in msc.alive_arcs():
        u, l = msc.arc_upper[aid], msc.arc_lower[aid]
        su, sl = node_side(u), node_side(l)
        if su == 0 and sl == 0:
            targets = [(-1, low), (1, high)]  # in-plane arc: replicate
        else:
            side = su if su != 0 else sl
            targets = [(side, halves[side])]
        for side, half in targets:
            key = side
            nu = ensure(half, key, u, ghost=(su not in (0, side)))
            nl = ensure(half, key, l, ghost=(sl not in (0, side)))
            gid = half.new_leaf_geometry(msc.geometry_addresses(aid))
            half.add_arc(nu, nl, gid)

    # isolated nodes (no arcs) still belong to a side
    for nid in msc.alive_nodes():
        side = node_side(nid)
        if side == 0:
            ensure(low, -1, nid, ghost=False)
            ensure(high, 1, nid, ghost=False)
        else:
            ensure(halves[side], side, nid, ghost=False)
    return low, high


def global_persistence_simplification(
    result: PipelineResult,
    threshold: float,
    sweeps: int = 1,
) -> GlobalSimplifyStats:
    """Run nearest-neighbor global simplification on a partial-merge result.

    Mutates ``result.output_blocks`` in place and returns statistics.
    ``threshold`` is the global persistence level (usually the same as
    the per-block threshold of the producing pipeline).
    """
    if sweeps < 1:
        raise ValueError("sweeps must be >= 1")
    schedule = result.schedule
    decomp = result.decomposition
    grid = schedule.grids[-1]
    remaining = [list(p) for p in schedule.cut_planes_after(
        schedule.num_rounds
    )]
    num_procs = result.stats.num_procs
    model = CostModel(num_procs=num_procs)

    stats = GlobalSimplifyStats(sweeps=sweeps)
    stats.nodes_before = sum(result.combined_node_counts())
    stats.output_bytes_before = sum(
        len(pack_complex(m)) for m in result.output_blocks.values()
    )

    def grid_coords_of_block(bid: int) -> tuple[int, int, int]:
        coords = decomp.block_coords(bid)
        f = schedule.cumulative_factors(schedule.num_rounds)
        return tuple(c // g for c, g in zip(coords, f))

    def block_of_grid(gc: tuple[int, int, int]) -> int:
        return decomp.linear_id(
            schedule.original_root_block(gc, schedule.num_rounds)
        )

    owner_blocks: dict[int, dict[int, MorseSmaleComplex]] = {
        r: {} for r in range(num_procs)
    }
    for bid, msc in result.output_blocks.items():
        owner_blocks[decomp.rank_of_block(bid, num_procs)][bid] = msc

    def program(comm):
        mine = owner_blocks[comm.rank]
        clock = 0.0
        local = {
            "merges": 0, "cancels": 0, "bytes": 0, "clock": 0.0,
        }
        tag_base = 5_000_000
        for sweep in range(sweeps):
            for axis in range(3):
                planes = remaining[axis]
                for parity in (0, 1):
                    # pairs (left, right) along this axis
                    pairs = []
                    for gz in range(grid[2]):
                        for gy in range(grid[1]):
                            for gx in range(grid[0]):
                                gc = (gx, gy, gz)
                                if gc[axis] % 2 != parity:
                                    continue
                                nb = list(gc)
                                nb[axis] += 1
                                if nb[axis] >= grid[axis]:
                                    continue
                                pairs.append((gc, tuple(nb)))
                    # send phase
                    for gc, nb in pairs:
                        left_bid = block_of_grid(gc)
                        right_bid = block_of_grid(nb)
                        left_rank = decomp.rank_of_block(
                            left_bid, num_procs
                        )
                        right_rank = decomp.rank_of_block(
                            right_bid, num_procs
                        )
                        tag = tag_base + right_bid
                        if right_rank == comm.rank and right_bid in mine:
                            blob = pack_complex(mine.pop(right_bid))
                            if left_rank == comm.rank:
                                mine[("inbox", right_bid)] = blob
                            else:
                                yield comm.send(
                                    left_rank, blob, tag=tag
                                )
                    # merge + split + return phase
                    for gc, nb in pairs:
                        left_bid = block_of_grid(gc)
                        right_bid = block_of_grid(nb)
                        left_rank = decomp.rank_of_block(
                            left_bid, num_procs
                        )
                        right_rank = decomp.rank_of_block(
                            right_bid, num_procs
                        )
                        if left_rank != comm.rank:
                            continue
                        if right_rank == comm.rank:
                            blob = mine.pop(("inbox", right_bid))
                        else:
                            blob = yield comm.recv(
                                right_rank, tag=tag_base + right_bid
                            )
                            local["bytes"] += len(blob)
                        other = unpack_complex(blob)
                        root = mine[left_bid]
                        plane = _plane_between(
                            planes, root, other, axis
                        )
                        addr_index = root.address_index()
                        glue_into(root, other, addr_index)
                        cuts = [
                            np.asarray(
                                [p for p in remaining[a] if not (
                                    a == axis and p == plane
                                )],
                                dtype=np.int64,
                            )
                            for a in range(3)
                        ]
                        root.update_boundary_flags(tuple(cuts))
                        cancels = simplify_ms_complex(
                            root, threshold, respect_boundary=True
                        )
                        root.compact()
                        lo_half, hi_half = split_complex(
                            root, axis, plane
                        )
                        lo_half.compact()
                        hi_half.compact()
                        mine[left_bid] = lo_half
                        local["merges"] += 1
                        local["cancels"] += len(cancels)
                        mwork = MergeWork(
                            glued_elements=other.num_alive_nodes()
                            + other.num_alive_arcs(),
                            cancellations=len(cancels),
                            packed_bytes=len(blob),
                        )
                        clock += model.merge_time(mwork) + (
                            model.message_time(
                                len(blob), right_rank, comm.rank
                            )
                            if right_rank != comm.rank
                            else 0.0
                        )
                        back = pack_complex(hi_half)
                        if right_rank == comm.rank:
                            mine[right_bid] = hi_half
                        else:
                            yield comm.send(
                                right_rank, back,
                                tag=tag_base * 2 + right_bid,
                            )
                    # receive returned halves
                    for gc, nb in pairs:
                        right_bid = block_of_grid(nb)
                        left_bid = block_of_grid(gc)
                        right_rank = decomp.rank_of_block(
                            right_bid, num_procs
                        )
                        left_rank = decomp.rank_of_block(
                            left_bid, num_procs
                        )
                        if (
                            right_rank == comm.rank
                            and left_rank != comm.rank
                        ):
                            blob = yield comm.recv(
                                left_rank, tag=tag_base * 2 + right_bid
                            )
                            local["bytes"] += len(blob)
                            mine[right_bid] = unpack_complex(blob)
                    yield comm.barrier()
        local["clock"] = clock
        return {"blocks": mine, "stats": local}

    mpi = VirtualMPI(num_procs)
    rank_returns = mpi.run(program)

    new_blocks: dict[int, MorseSmaleComplex] = {}
    for ret in rank_returns:
        stats.pair_merges += ret["stats"]["merges"]
        stats.cancellations += ret["stats"]["cancels"]
        stats.virtual_seconds = max(
            stats.virtual_seconds, ret["stats"]["clock"]
        )
        for key, msc in ret["blocks"].items():
            if isinstance(key, int):
                new_blocks[key] = msc
    result.output_blocks.clear()
    result.output_blocks.update(new_blocks)

    stats.message_bytes = sum(m.nbytes for m in mpi.message_log)
    stats.nodes_after = sum(result.combined_node_counts())
    # the pipeline's cached serialized records describe the pre-sweep
    # blocks; re-pack so result.write() emits the simplified complexes
    new_blobs = {
        bid: pack_complex(m) for bid, m in result.output_blocks.items()
    }
    result.output_blobs = new_blobs
    stats.output_bytes_after = sum(len(b) for b in new_blobs.values())
    # a captured multiscale hierarchy describes the pre-sweep blocks
    # too: re-capture so persisted queries stay consistent with the
    # globally simplified output
    if result.hierarchies is not None:
        result.hierarchies = {
            bid: MSComplexHierarchy.capture(m)
            for bid, m in result.output_blocks.items()
        }
    stats.ghost_nodes = sum(
        1
        for m in result.output_blocks.values()
        for n in m.alive_nodes()
        if m.node_ghost[n]
    )
    return stats


def _plane_between(planes, root, other, axis) -> int:
    """The remaining cut plane separating two adjacent block regions."""
    boundary_vertex = root.region_hi[axis] - 1
    expected = 2 * boundary_vertex
    if other.region_lo[axis] != boundary_vertex:
        raise ValueError(
            f"blocks are not adjacent along axis {axis}: "
            f"{root.region_hi} vs {other.region_lo}"
        )
    if expected not in set(int(p) for p in planes):
        raise ValueError(
            f"no remaining cut plane at refined coord {expected} "
            f"on axis {axis}"
        )
    return expected
