"""Per-stage work and timing accounting.

Every pipeline run produces a :class:`PipelineStats`: real measured wall
times of the Python computation, exact work counters, and virtual Blue
Gene/P seconds per stage per rank.  The benchmark harness prints the
paper's tables and figures from these records.

Virtual-time semantics match the paper's reporting: a stage's time is
the maximum over ranks (processes run concurrently and the stage ends at
a synchronization point), and per-round merge times are increments of
the global maximum clock across the round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BlockComputeStats",
    "FaultToleranceStats",
    "MergeEventStats",
    "RankTimeline",
    "PipelineStats",
    "TransportStats",
    "COMPUTE_STAGES",
]

#: compute-stage phases timed per block, in execution order
COMPUTE_STAGES = ("build", "gradient", "trace", "simplify", "pack")


@dataclass
class FaultToleranceStats:
    """Observability record of the fault-tolerance layer.

    Filled in by :class:`repro.parallel.executor.FaultTolerantExecutor`
    during the compute stage and by the merge-round recovery wrapper
    (:func:`repro.core.merge.merge_with_retries`).  All zeros on a
    healthy run.
    """

    #: block re-dispatches (compute stage), across all failure kinds
    retries: int = 0
    #: failed attempts classified as per-block timeouts / hangs
    timeouts: int = 0
    #: failed attempts classified as worker crashes (any other error)
    crashes: int = 0
    #: payloads rejected by validation (checksum / identity mismatch)
    corrupt_payloads: int = 0
    #: worker-pool rebuilds after a worker death or a clogged pool
    pool_restarts: int = 0
    #: merge-computation retries at group roots
    merge_retries: int = 0
    #: True once the executor fell back to in-process serial execution
    degraded: bool = False
    #: human-readable reason of each degradation decision
    degradation_events: list[str] = field(default_factory=list)
    #: total exponential-backoff sleep requested between attempts
    backoff_seconds: float = 0.0

    def any_faults(self) -> bool:
        """Whether any failure-path machinery fired during the run."""
        return bool(
            self.retries
            or self.timeouts
            or self.crashes
            or self.corrupt_payloads
            or self.pool_restarts
            or self.merge_retries
            or self.degraded
        )

    def counters(self) -> dict[str, int]:
        """Scalar counters as a dict (stable keys, for tests/telemetry)."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "corrupt_payloads": self.corrupt_payloads,
            "pool_restarts": self.pool_restarts,
            "merge_retries": self.merge_retries,
            "degraded": int(self.degraded),
        }

    def describe(self) -> str:
        """One-line summary, e.g. for the CLI timing report."""
        parts = [
            f"{k}={v}" for k, v in self.counters().items() if v
        ]
        if self.backoff_seconds:
            parts.append(f"backoff={self.backoff_seconds:.3f}s")
        return "faults: " + (" ".join(parts) if parts else "none")


@dataclass
class TransportStats:
    """Byte accounting of the compute stage's block transport."""

    #: concrete transport the run used ("pickle", "shm", or "mmap")
    kind: str = "pickle"
    #: bytes of the published shared-memory volume (0 on pickle/mmap)
    shared_volume_bytes: int = 0
    #: bytes shipped to workers across every dispatch, retries included
    dispatch_bytes: int = 0
    #: compute dispatches performed (first attempts + retries)
    dispatches: int = 0
    #: full-volume vertex bytes the *driver* staged for transport —
    #: the in-memory grid for pickle/shm, 0 for mmap (workers subarray-
    #: read from disk; the driver never materializes the volume)
    driver_staged_bytes: int = 0
    #: streaming-session steps served by rebinding the existing shm
    #: segment in place (same name, workers keep their attachment)
    shm_rebinds: int = 0
    #: shm publishes that created (or grew) a segment
    shm_republishes: int = 0

    def describe(self) -> str:
        """One-line summary, e.g. for the CLI timing report."""
        out = (
            f"transport: {self.kind}, {self.dispatches} dispatches, "
            f"{self.dispatch_bytes} bytes shipped"
        )
        if self.shared_volume_bytes:
            out += f" (+{self.shared_volume_bytes} bytes published once)"
        if self.shm_rebinds:
            out += f" ({self.shm_rebinds} segment rebinds)"
        if self.kind == "mmap":
            out += " (driver stages no volume bytes)"
        return out


@dataclass
class BlockComputeStats:
    """Compute-stage record of one block."""

    block_id: int
    rank: int
    cells: int
    critical_counts: tuple[int, int, int, int]
    nodes_after_simplify: int
    arcs_after_simplify: int
    geometry_cells_traced: int
    cancellations: int
    real_seconds: float
    virtual_seconds: float
    #: real seconds per compute phase (keys: COMPUTE_STAGES)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: bytes this block's spec shipped to its worker (last attempt)
    transport_nbytes: int = 0


@dataclass
class MergeEventStats:
    """One merge performed at a group root."""

    round_idx: int
    root_block: int
    root_rank: int
    members: int
    received_bytes: int
    nodes_glued: int
    arcs_glued: int
    boundary_nodes_freed: int
    cancellations: int
    wait_seconds: float  # virtual idle time until the last member arrived
    merge_seconds: float  # virtual glue + re-simplify + pack time
    real_seconds: float


@dataclass
class RankTimeline:
    """Virtual clock components of one rank, in pipeline order."""

    rank: int
    read: float = 0.0
    compute: float = 0.0
    #: per-round virtual clock value *after* that round, for this rank
    after_round: list[float] = field(default_factory=list)
    write: float = 0.0
    final_clock: float = 0.0


@dataclass
class PipelineStats:
    """Aggregated statistics of one pipeline run."""

    num_procs: int
    num_blocks: int
    radices: list[int]
    block_stats: list[BlockComputeStats] = field(default_factory=list)
    merge_events: list[MergeEventStats] = field(default_factory=list)
    timelines: list[RankTimeline] = field(default_factory=list)
    output_bytes: int = 0
    message_bytes: int = 0
    real_seconds_total: float = 0.0
    #: shared-memory worker-pool width the compute stage ran on
    workers: int = 1
    #: concrete compute-stage backend ("serial" or "process")
    executor: str = "serial"
    #: concrete merge-stage backend ("serial" or "pool")
    merge_executor: str = "serial"
    #: real wall-clock seconds of the compute stage across all blocks
    compute_wall_seconds: float = 0.0
    #: real wall-clock seconds of the merge stage (pooled: the driver
    #: pre-pass dispatch; serial: summed in-rank root-merge times)
    merge_wall_seconds: float = 0.0
    #: fault-tolerance observability (retries, timeouts, degradations)
    faults: FaultToleranceStats = field(default_factory=FaultToleranceStats)
    #: block-transport observability (kind, bytes shipped per dispatch)
    transport: TransportStats = field(default_factory=TransportStats)
    #: stitched run timeline (:class:`repro.obs.trace.TraceRecord`)
    #: when the run had ``trace=True``; ``None`` otherwise
    trace: Any = None
    #: aggregated metrics snapshot (see :mod:`repro.obs.metrics`) when
    #: the run had ``metrics=True``; ``None`` otherwise
    metrics: dict | None = None
    #: merge-stage blob-spool counters (puts, spills, read-backs,
    #: resident peak — see :class:`repro.io.spool.SpoolStats`) when a
    #: pooled merge ran; ``None`` otherwise
    spool: dict | None = None

    # -- virtual stage times (paper-style reporting) ---------------------

    @property
    def read_time(self) -> float:
        """Virtual read-stage time (max over ranks)."""
        return max((t.read for t in self.timelines), default=0.0)

    @property
    def compute_time(self) -> float:
        """Virtual compute-stage time (max over ranks)."""
        return max((t.compute for t in self.timelines), default=0.0)

    def merge_round_times(self) -> list[float]:
        """Virtual duration of each merge round (global clock increments)."""
        if not self.timelines or not self.timelines[0].after_round:
            return []
        num_rounds = len(self.timelines[0].after_round)
        out = []
        prev = max(t.read + t.compute for t in self.timelines)
        for r in range(num_rounds):
            cur = max(t.after_round[r] for t in self.timelines)
            out.append(max(0.0, cur - prev))
            prev = cur
        return out

    @property
    def merge_time(self) -> float:
        """Total virtual merge-stage time."""
        return sum(self.merge_round_times())

    @property
    def write_time(self) -> float:
        """Virtual write-stage time (max over ranks)."""
        return max((t.write for t in self.timelines), default=0.0)

    @property
    def total_time(self) -> float:
        """Virtual end-to-end time."""
        return max((t.final_clock for t in self.timelines), default=0.0)

    def stage_breakdown(self) -> dict[str, float]:
        """Virtual seconds per stage, paper Fig. 9 style."""
        return {
            "read": self.read_time,
            "compute": self.compute_time,
            "merge": self.merge_time,
            "write": self.write_time,
            "total": self.total_time,
        }

    # -- real (measured) compute-stage times ------------------------------

    @property
    def compute_cpu_seconds(self) -> float:
        """Real CPU seconds of the compute stage, summed over blocks."""
        return sum(b.real_seconds for b in self.block_stats)

    @property
    def compute_speedup(self) -> float:
        """Real compute-stage speedup: per-block CPU sum over wall-clock.

        1.0 for a serial run (up to timer noise); approaches ``workers``
        when the pool parallelizes perfectly on enough physical cores.
        """
        if self.compute_wall_seconds <= 0:
            return 1.0
        return self.compute_cpu_seconds / self.compute_wall_seconds

    def compute_stage_seconds(self) -> dict[str, float]:
        """Real seconds per compute phase, summed over blocks.

        Keys are :data:`COMPUTE_STAGES`; blocks computed before the
        per-stage timers existed (or merged-in foreign payloads)
        contribute nothing.
        """
        out = {k: 0.0 for k in COMPUTE_STAGES}
        for b in self.block_stats:
            for k, v in b.stage_seconds.items():
                out[k] = out.get(k, 0.0) + v
        return out

    # -- structure summaries ----------------------------------------------

    def total_cells(self) -> int:
        return sum(b.cells for b in self.block_stats)

    def total_critical_points(self) -> int:
        return sum(sum(b.critical_counts) for b in self.block_stats)

    def describe(self) -> str:
        """Multi-line human-readable run report.

        Delegates to :func:`repro.obs.export.format_run_summary`, the
        single formatter for run summaries.
        """
        from repro.obs.export import format_run_summary

        return format_run_summary(self)
