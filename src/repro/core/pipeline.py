"""Algorithm 1: the two-stage parallel MS complex computation.

::

    Decompose domain                (§IV-A)
    Read data blocks                (§IV-B)
    for all local blocks do
        Compute discrete gradient   (§IV-C)
        Compute MS complex          (§IV-D)
        Simplify MS complex         (§IV-E)
    end for
    for number of rounds do
        Merge MS complex blocks     (§IV-F)
    end for
    Write MS complex blocks         (§IV-G)

The algorithm is data-parallel: every step is performed by every virtual
process.  Each rank runs :func:`_rank_main` as a generator program under
:class:`repro.parallel.runtime.VirtualMPI`; the computation is real (the
discrete gradient, tracing, simplification and gluing actually run), and
each rank additionally advances a *virtual clock* priced by the Blue
Gene/P cost model, from which the benchmark harness reads paper-style
stage timings.

The compute stage (the ``for all local blocks`` loop) is factored into a
pure, pickle-safe worker function, :func:`compute_block`, so it can run
on a real shared-memory worker pool (see
:mod:`repro.parallel.executor`): the driver fans all block specs out over
the configured executor *before* the virtual ranks run, and the rank
programs consume the resulting per-block payloads — serialized with the
same :func:`~repro.core.merge.pack_complex` format the merge rounds
exchange — exactly as if they had computed them locally.  Because the
boundary-restricted gradient pairing makes every block's result
independent of all others, the executor choice is pure scheduling:
serial and pooled runs are bit-identical.
"""

from __future__ import annotations

import logging
import warnings
import zlib
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.hierarchy import MSComplexHierarchy
from repro.core.config import PipelineConfig
from repro.core.merge import (
    MergePayload,
    MergeSpec,
    MergeStageError,
    merge_task,
    merge_with_retries,
    pack_complex,
    unpack_complex,
    validate_merge_payload,
)
from repro.core.result import PipelineResult
from repro.core.stats import (
    COMPUTE_STAGES,
    BlockComputeStats,
    FaultToleranceStats,
    MergeEventStats,
    PipelineStats,
    RankTimeline,
    TransportStats,
)
from repro.io.spool import BlobSpool, blob_nbytes
from repro.io.volume import VolumeSpec, read_block, read_volume
from repro.machine.costmodel import ComputeWork, CostModel, MergeWork
from repro.mesh.cubical import CubicalComplex, structure_tables
from repro.mesh.grid import Box, StructuredGrid
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry
from repro.obs.trace import (
    DRIVER_LANE,
    RANK_LANE_BASE,
    TraceRecord,
    Tracer,
)
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import (
    assert_acyclic,
    assert_gradient_field_valid,
    assert_ms_complex_valid,
)
from repro.parallel.decomposition import BlockDecomposition, decompose
from repro.parallel.executor import (
    ComputeStageError,
    CorruptPayloadError,
    FaultTolerantExecutor,
)
from repro.parallel.faults import MergeFaultAdapter
from repro.parallel.transport import SPEC_HEADER_BYTES, SharedVolumeHandle
from repro.parallel.radixk import MergeSchedule
from repro.parallel.runtime import VirtualMPI, pool_makespan

__all__ = [
    "BlockPayload",
    "BlockSpec",
    "ParallelMSComplexPipeline",
    "compute_block",
    "compute_morse_smale_complex",
    "validate_block_payload",
]

logger = logging.getLogger(__name__)


def compute_morse_smale_complex(
    values: np.ndarray | StructuredGrid,
    *args: Any,
    persistence_threshold: float = 0.0,
    simplify: bool = True,
    validate: bool = False,
    kernel_backend: str = "auto",
) -> MorseSmaleComplex:
    """Serial MS complex of a scalar field (single block, no merging).

    The convenience entry point for analysis at laptop scale and the
    reference the parallel computation is validated against.  Returns a
    compacted complex; the cancellation hierarchy remains available in
    ``msc.hierarchy``.

    ``persistence_threshold``, ``simplify`` and ``validate`` are
    keyword-only; passing them positionally is deprecated (accepted with
    a :class:`DeprecationWarning` for one release).
    """
    if args:
        names = ("persistence_threshold", "simplify", "validate")
        if len(args) > len(names):
            raise TypeError(
                "compute_morse_smale_complex() takes at most "
                f"{1 + len(names)} positional arguments "
                f"({1 + len(args)} given)"
            )
        warnings.warn(
            "passing compute_morse_smale_complex() options positionally "
            "is deprecated; use keyword arguments "
            "(persistence_threshold=, simplify=, validate=)",
            DeprecationWarning,
            stacklevel=2,
        )
        overrides = dict(zip(names, args))
        persistence_threshold = overrides.get(
            "persistence_threshold", persistence_threshold
        )
        simplify = overrides.get("simplify", simplify)
        validate = overrides.get("validate", validate)
    grid = values if isinstance(values, StructuredGrid) else StructuredGrid(values)
    cx = CubicalComplex(grid.values)
    field = compute_discrete_gradient(cx)
    if validate:
        assert_gradient_field_valid(field)
        assert_acyclic(field)
    msc = extract_ms_complex(field, kernel_backend=kernel_backend)
    if simplify:
        simplify_ms_complex(
            msc, persistence_threshold, respect_boundary=False
        )
    msc.compact()
    if validate:
        assert_ms_complex_valid(msc)
    return msc


# ---------------------------------------------------------------------------
# the compute-stage worker (pure and pickle-safe)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockSpec:
    """Everything needed to compute one block, picklable and immutable.

    Exactly one of ``values`` (the block's vertex samples, shared layers
    included), ``volume`` (a raw volume file the worker reads its own
    subarray from, the parallel-I/O path of §IV-B) and ``shm`` (a
    published shared-memory volume the worker attaches to and slices its
    block view from — the zero-copy transport) is set.
    """

    block_id: int
    box: Box
    refined_origin: tuple[int, int, int]
    global_refined_dims: tuple[int, int, int]
    cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray]
    persistence_threshold: float
    simplify_at_zero_persistence: bool
    validate: bool
    #: V-path tracing backend ({auto, dfs, pointer}); pure scheduling,
    #: the block payload bytes are identical on either backend
    kernel_backend: str = "auto"
    values: np.ndarray | None = None
    volume: VolumeSpec | None = None
    shm: SharedVolumeHandle | None = None
    #: ship the worker's span buffer back with the payload (tracing on)
    trace: bool = False
    #: ship a worker-local metrics snapshot back with the payload
    collect_metrics: bool = False

    @property
    def transport_nbytes(self) -> int:
        """Bytes one dispatch of this spec ships to a worker."""
        if self.values is not None:
            return int(self.values.nbytes) + SPEC_HEADER_BYTES
        return SPEC_HEADER_BYTES


@dataclass
class BlockPayload:
    """Picklable result of one block's compute stage.

    Carries the serialized complex (the same
    :func:`~repro.core.merge.pack_complex` bytes the merge rounds
    exchange) plus the exact work counters the cost model and the stats
    records need.
    """

    block_id: int
    blob: bytes
    cells: int
    critical_counts: tuple[int, int, int, int]
    nodes_after_simplify: int
    arcs_after_simplify: int
    geometry_cells_traced: int
    cancellations: int
    real_seconds: float
    #: CRC-32 of ``blob`` at pack time; the driver re-checks it so a
    #: payload corrupted in transit is detected and the block retried
    checksum: int = 0
    #: real seconds per compute phase
    #: (keys: :data:`repro.core.stats.COMPUTE_STAGES`)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: bytes the spec of this attempt shipped to the worker
    transport_nbytes: int = 0
    #: OS pid of the process that computed this payload
    worker_pid: int = 0
    #: the worker's span buffer (``spec.trace`` runs only)
    trace_events: list = field(default_factory=list)
    #: the worker's metrics snapshot (``spec.collect_metrics`` runs only)
    metrics: dict | None = None


def compute_block(spec: BlockSpec) -> BlockPayload:
    """Compute one block: read → gradient → MS complex → simplify.

    A pure function of its spec — no shared state, picklable input and
    output — so it can run unchanged in this process or on any worker of
    a process pool; every execution of the same spec produces the same
    payload bytes (§IV-C's boundary-restricted pairing makes the result
    independent of all other blocks).
    """
    sources = sum(
        x is not None for x in (spec.values, spec.volume, spec.shm)
    )
    if sources != 1:
        raise ValueError(
            "spec must carry exactly one of values/volume/shm"
        )
    # Every block runs under a local tracer — the single source of its
    # stage timings (``stage_seconds`` below are span durations).  The
    # tracer becomes process-ambient only when the run traces, so
    # kernel- and io-level spans stay free otherwise.
    tracer = Tracer(enabled=True)
    ambient = tracer.installed() if spec.trace else nullcontext()
    with ambient:
        with tracer.span(
            "compute.block", cat="compute", block=spec.block_id
        ) as block_span:
            with tracer.span(
                "io.read", cat="io", block=spec.block_id
            ) as read_span:
                if spec.values is not None:
                    # no normalization: CubicalComplex copies at most once
                    block_values = spec.values
                    read_span.annotate(source="pickle")
                elif spec.shm is not None:
                    # zero-copy: attach (cached per process) and slice the
                    # block's view; CubicalComplex makes the one copy
                    block_values = spec.shm.open()[spec.box.slices()]
                    read_span.annotate(source="shm")
                else:
                    # out-of-core: map the file (cached per process)
                    # and gather only this block's subarray
                    block_values = read_block(spec.volume, spec.box)
                    read_span.annotate(source="mmap")
            with tracer.span("compute.build", cat="compute"):
                cx = CubicalComplex(
                    block_values,
                    refined_origin=spec.refined_origin,
                    global_refined_dims=spec.global_refined_dims,
                    cut_planes=spec.cut_planes,
                )
            with tracer.span("compute.gradient", cat="compute"):
                gradient = compute_discrete_gradient(cx)
            with tracer.span("compute.trace", cat="compute"):
                if spec.validate:
                    assert_gradient_field_valid(gradient)
                    assert_acyclic(gradient)
                msc = extract_ms_complex(
                    gradient, kernel_backend=spec.kernel_backend
                )
            with tracer.span("compute.simplify", cat="compute") as simp:
                geometry_traced = msc.total_geometry_length()
                crit_counts = gradient.critical_counts()
                if (
                    spec.persistence_threshold == 0
                    and not spec.simplify_at_zero_persistence
                ):
                    cancels = []
                else:
                    cancels = simplify_ms_complex(
                        msc, spec.persistence_threshold,
                        respect_boundary=True,
                    )
                msc.compact()
                if spec.validate:
                    assert_ms_complex_valid(msc)
                simp.annotate(cancellations=len(cancels))
            with tracer.span("compute.pack", cat="compute"):
                blob = pack_complex(msc)
            block_span.annotate(cells=cx.num_cells)
    stage_seconds = {
        k: tracer.duration(f"compute.{k}") for k in COMPUTE_STAGES
    }
    real = sum(
        stage_seconds[k] for k in ("build", "gradient", "trace", "simplify")
    )
    metrics = None
    if spec.collect_metrics:
        reg = MetricsRegistry()
        reg.counter("compute.blocks").inc()
        reg.counter("compute.cells").inc(cx.num_cells)
        reg.counter("compute.cancellations").inc(len(cancels))
        reg.counter("transport.block_bytes_in").inc(spec.transport_nbytes)
        reg.histogram("compute.block_seconds").observe(real)
        for k, v in stage_seconds.items():
            reg.counter(f"compute.{k}_seconds").inc(v)
        metrics = reg.snapshot()
    return BlockPayload(
        block_id=spec.block_id,
        blob=blob,
        cells=cx.num_cells,
        critical_counts=crit_counts,
        nodes_after_simplify=msc.num_alive_nodes(),
        arcs_after_simplify=msc.num_alive_arcs(),
        geometry_cells_traced=geometry_traced,
        cancellations=len(cancels),
        real_seconds=real,
        checksum=zlib.crc32(blob),
        stage_seconds=stage_seconds,
        transport_nbytes=spec.transport_nbytes,
        worker_pid=tracer.pid,
        trace_events=tracer.events if spec.trace else [],
        metrics=metrics,
    )


def validate_block_payload(spec: BlockSpec, payload: Any) -> None:
    """Reject payloads that are not the intact result of ``spec``.

    The fault-tolerance layer calls this after every compute attempt;
    raising :class:`~repro.parallel.executor.CorruptPayloadError`
    triggers a retry of the block.
    """
    if not isinstance(payload, BlockPayload):
        raise CorruptPayloadError(
            f"block {spec.block_id}: worker returned "
            f"{type(payload).__name__}, not a BlockPayload"
        )
    if payload.block_id != spec.block_id:
        raise CorruptPayloadError(
            f"block {spec.block_id}: payload claims block "
            f"{payload.block_id}"
        )
    if zlib.crc32(payload.blob) != payload.checksum:
        raise CorruptPayloadError(
            f"block {spec.block_id}: payload checksum mismatch "
            f"(corrupted in transit?)"
        )


@dataclass
class _Plan:
    """Input-independent planning artifacts of a run.

    A pure function of ``(config, dims)``: the decomposition, the merge
    schedule with its per-round groups and cut planes, and the cost
    model.  One-shot runs build a plan per run; a persistent
    :class:`repro.core.session.PipelineSession` caches it per ``dims``
    and replays it for every step of a time series.
    """

    decomp: BlockDecomposition
    schedule: MergeSchedule
    model: CostModel
    num_procs: int
    #: per-round groups as (root_lid, root_rank, [(member_lid, member_rank)])
    groups_by_round: list
    #: per-round remaining cut planes (after that round completes)
    cuts_by_round: list


def build_plan(cfg: PipelineConfig, dims: tuple[int, int, int]) -> _Plan:
    """Plan one run: decompose, schedule the merge, price the machine.

    Also pre-warms the mesh structure-table memo for every block shape,
    so worker pools forked after planning inherit the built tables.
    """
    decomp = decompose(dims, cfg.num_blocks, cfg.splits)
    schedule = MergeSchedule(decomp, cfg.resolve_radices())
    num_procs = cfg.resolved_num_procs
    model = CostModel(cfg.machine, num_procs)
    groups_by_round = []
    cuts_by_round = []
    for r in range(schedule.num_rounds):
        rows = []
        for root_coords, member_coords in schedule.groups(r):
            root_lid = decomp.linear_id(root_coords)
            members = [
                (
                    decomp.linear_id(mc),
                    decomp.rank_of_block(
                        decomp.linear_id(mc), num_procs
                    ),
                )
                for mc in member_coords
            ]
            rows.append(
                (root_lid,
                 decomp.rank_of_block(root_lid, num_procs),
                 members)
            )
        groups_by_round.append(rows)
        cuts_by_round.append(schedule.cut_planes_after(r + 1))
    for bid in range(decomp.num_blocks):
        box = decomp.block_box(decomp.block_coords(bid))
        structure_tables(tuple(2 * n + 1 for n in box.shape))
    return _Plan(
        decomp=decomp,
        schedule=schedule,
        model=model,
        num_procs=num_procs,
        groups_by_round=groups_by_round,
        cuts_by_round=cuts_by_round,
    )


@dataclass
class _RunContext:
    """Inputs shared by all ranks of one run (read-only)."""

    cfg: PipelineConfig
    decomp: BlockDecomposition
    schedule: MergeSchedule
    model: CostModel
    vertex_bytes: int  # bytes per vertex sample on storage
    #: precomputed compute-stage payloads, one per block
    payloads: dict[int, BlockPayload]
    #: per-round groups as (root_lid, root_rank, [(member_lid, member_rank)])
    groups_by_round: list[list[tuple[int, int, list[tuple[int, int]]]]] = field(
        default_factory=list
    )
    #: per-round remaining cut planes (after that round completes)
    cuts_by_round: list[tuple] = field(default_factory=list)
    #: same-rank member-to-root handoffs, keyed by (rank, round, block)
    local_inbox: dict[tuple[int, int, int], Any] = field(default_factory=dict)
    #: shared fault-tolerance counters (compute stage + merge retries)
    ft: FaultToleranceStats = field(default_factory=FaultToleranceStats)
    #: the run's tracer (always enabled: it is the stage stopwatch)
    tracer: Tracer = field(default_factory=Tracer)
    #: resolved merge-stage backend ("serial" or "pool")
    merge_mode: str = "serial"
    #: pooled-merge results precomputed by the driver, keyed
    #: ``(round_idx, root_block)``
    merge_results: dict[tuple[int, int], MergePayload] = field(
        default_factory=dict
    )
    #: round-0 inputs were already simplified at the run threshold, so
    #: the first merge round may re-simplify incrementally
    presimplified: bool = True
    #: packed-blob spool of the pooled merge stage (``None`` outside
    #: pooled mode): ranks fetch blob *handles* from it instead of
    #: holding bytes, and the write stage materializes through it
    spool: BlobSpool | None = None


class ParallelMSComplexPipeline:
    """Driver for the parallel MS complex computation.

    Typical use::

        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        result = ParallelMSComplexPipeline(cfg).run(field)
        merged = result.merged_complexes[0]

    With ``workers > 1`` the compute stage fans out over a pool of OS
    processes (see :mod:`repro.parallel.executor`); the merge rounds
    still run under the deterministic virtual MPI and consume the
    per-block payloads unchanged.
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def _block_specs(
        self,
        decomp: BlockDecomposition,
        grid: StructuredGrid | None,
        volume: VolumeSpec | None,
        shm: SharedVolumeHandle | None = None,
    ) -> list[BlockSpec]:
        """Picklable per-block work orders, in block-id order.

        With ``shm`` set (the zero-copy transport), specs carry only the
        tiny segment handle; workers slice their block out of the
        published volume themselves.
        """
        cfg = self.config
        specs = []
        for bid in range(decomp.num_blocks):
            box = decomp.block_box(decomp.block_coords(bid))
            if shm is not None:
                values = None
            elif grid is not None:
                values = np.ascontiguousarray(
                    grid.extract_block(box), dtype=np.float64
                )
            else:
                values = None
            specs.append(
                BlockSpec(
                    block_id=bid,
                    box=box,
                    refined_origin=box.refined_origin,
                    global_refined_dims=decomp.global_refined_dims,
                    cut_planes=decomp.cut_planes,
                    persistence_threshold=cfg.persistence_threshold,
                    simplify_at_zero_persistence=(
                        cfg.simplify_at_zero_persistence
                    ),
                    validate=cfg.validate,
                    kernel_backend=cfg.kernel_backend,
                    values=values,
                    volume=volume,
                    shm=shm,
                    trace=cfg.trace,
                    collect_metrics=cfg.metrics,
                )
            )
        return specs

    def run(
        self,
        values: np.ndarray | StructuredGrid | None = None,
        volume: VolumeSpec | None = None,
    ) -> PipelineResult:
        """Run the full pipeline on an in-memory field or a volume file."""
        # The run tracer is always on: it is the canonical stopwatch
        # every real wall time in PipelineStats reads from.  It becomes
        # the process-ambient tracer — lighting up kernel/io/executor
        # span sites — only when the config asks for a trace.
        tracer = Tracer(enabled=True)
        ambient = tracer.installed() if self.config.trace else nullcontext()
        with ambient:
            return self._run(tracer, values, volume)

    def _run(
        self,
        tracer: Tracer,
        values: np.ndarray | StructuredGrid | None,
        volume: VolumeSpec | None,
        session: Any = None,
    ) -> PipelineResult:
        cfg = self.config
        if (values is None) == (volume is None):
            raise ValueError("pass exactly one of `values` or `volume`")
        grid = None
        if values is not None:
            grid = (
                values
                if isinstance(values, StructuredGrid)
                else StructuredGrid(values)
            )
            dims = grid.dims
            vertex_bytes = grid.values.dtype.itemsize
        else:
            dims = volume.dims
            vertex_bytes = volume.np_dtype.itemsize

        registry = MetricsRegistry() if cfg.metrics else None
        # the pooled merge stage's packed-blob spool: blobs stay in
        # driver memory under `merge_spill_budget_bytes` and spill
        # LRU-first to a run-scoped disk dir over it (budget None never
        # spills and never touches disk — the pre-spool fast path)
        spool: BlobSpool | None = None
        if cfg.resolved_merge_executor == "pool" and cfg.resolve_radices():
            spool = BlobSpool(
                budget_bytes=cfg.merge_spill_budget_bytes,
                tracer=tracer if cfg.trace else None,
            )
        try:
            with tracer.span("pipeline.run", cat="pipeline") as run_span:
                result = self._run_traced(
                    tracer, registry, cfg, grid, volume, dims, vertex_bytes,
                    session=session, spool=spool,
                )
            if spool is not None:
                result.stats.spool = spool.stats.to_dict()
        finally:
            # spill files live exactly as long as the run: retries and
            # the write stage re-read them; nothing outlives this close
            if spool is not None:
                spool.close()
        stats = result.stats
        stats.real_seconds_total = run_span.duration
        if cfg.trace:
            stats.trace = self._trace_record(tracer, stats)
        if registry is not None:
            self._fill_run_metrics(registry, stats)
            if session is not None:
                session._fill_session_metrics(registry)
            stats.metrics = registry.snapshot()
        return result

    def _run_traced(
        self, tracer, registry, cfg, grid, volume, dims, vertex_bytes,
        session=None, spool=None,
    ) -> PipelineResult:
        # transport resolution is input-kind aware: impossible combos
        # (shm + volume file, mmap + in-memory field) fail here with a
        # readable error instead of silently falling back mid-pipeline
        input_kind = "memory" if grid is not None else "volume"
        transport_kind = cfg.resolve_transport(input_kind)

        with tracer.span("pipeline.plan", cat="pipeline") as plan_span:
            if session is not None:
                plan, plan_cached = session._plan_for(dims)
            else:
                plan, plan_cached = build_plan(cfg, dims), False
            plan_span.annotate(cached=plan_cached)
        decomp, schedule, model = plan.decomp, plan.schedule, plan.model
        num_procs = plan.num_procs
        groups_by_round = plan.groups_by_round
        cuts_by_round = plan.cuts_by_round
        # the spool participates exactly when the pooled merge pre-pass
        # will run; otherwise payload blobs flow by value as before
        if spool is not None and not (
            cfg.resolved_merge_executor == "pool"
            and schedule.num_rounds > 0
        ):
            spool = None

        # ---- compute stage, on the configured executor ----------------
        # wrapped in the fault-tolerance layer: per-block timeouts,
        # bounded retries, pool restarts, degradation to serial
        ft = FaultToleranceStats()
        transport = TransportStats(kind=transport_kind)
        if session is not None:
            executor, pool_reused = session._compute_executor(
                ft, transport, tracer if cfg.trace else None
            )
            tracer.event(
                "session.reuse", cat="session",
                step=session.stats.runs, plan_cached=plan_cached,
                pool_reused=pool_reused,
            )
        else:
            executor = FaultTolerantExecutor(
                kind=cfg.resolved_executor,
                workers=cfg.workers,
                policy=cfg.retry_policy(),
                plan=cfg.faults,
                validator=validate_block_payload,
                stats=ft,
                transport=transport,
                tracer=tracer if cfg.trace else None,
            )
        try:
            shm_handle = None
            spec_grid = grid
            spec_volume = None
            if transport_kind == "shm":
                with tracer.span("shm.publish", cat="transport"):
                    shm_handle = executor.publish_volume(grid.values)
                transport.driver_staged_bytes += grid.values.nbytes
            elif transport_kind == "mmap":
                # out-of-core: specs carry only the file spec + box and
                # workers subarray-read from disk; the driver never
                # materializes the volume
                spec_grid = None
                spec_volume = volume
            elif grid is None:
                # explicit pickle with a volume-file input: materialize
                # the volume once in the driver and ship subarrays by
                # value (bit-identical to the mmap path)
                spec_grid = StructuredGrid(read_volume(volume))
                transport.driver_staged_bytes += spec_grid.values.nbytes
            else:
                transport.driver_staged_bytes += grid.values.nbytes
            with tracer.span("pipeline.specs", cat="pipeline"):
                specs = self._block_specs(
                    decomp, spec_grid, spec_volume, shm=shm_handle
                )
            with tracer.span(
                "compute.dispatch", cat="compute", blocks=len(specs),
                executor=cfg.resolved_executor, workers=cfg.workers,
            ) as dispatch_span:
                on_compute_result = None
                if spool is not None:
                    def on_compute_result(spec, payload, _spool=spool):
                        # strip each landing block's packed blob into
                        # the spool so a whole volume's worth of blobs
                        # is never resident in the driver at once
                        _spool.put(("b", payload.block_id), payload.blob)
                        payload.blob = b""
                payload_list = executor.map_blocks(
                    compute_block, specs, on_result=on_compute_result
                )
        finally:
            # a session owns its executor across runs; one-shot runs
            # release it (pool, shm slot) here
            if session is None:
                executor.close()
        logger.info(
            "compute stage done: %d blocks in %.3fs on %s executor",
            len(payload_list), dispatch_span.duration,
            cfg.resolved_executor,
        )
        # stitch the workers' span buffers into the driver timeline and
        # fold their metrics snapshots into the run registry
        if cfg.trace:
            for p in payload_list:
                tracer.absorb(p.trace_events)
        if registry is not None:
            for p in payload_list:
                registry.merge_snapshot(p.metrics)
        payloads = {p.block_id: p for p in payload_list}

        # ---- merge stage pre-pass (pooled backend) --------------------
        # Within a round the per-root merges are independent functions of
        # packed blobs, so the driver can fan them out over a worker pool
        # before the virtual ranks run — the same pre-pass pattern as the
        # compute stage.  The ranks then adopt the precomputed results;
        # determinism makes them byte-identical to in-rank merging, so
        # the virtual clock and message accounting are unchanged.
        merge_mode = cfg.resolved_merge_executor
        presimplified = (
            cfg.persistence_threshold > 0 or cfg.simplify_at_zero_persistence
        )
        merge_results: dict[tuple[int, int], MergePayload] = {}
        merge_wall = 0.0
        if merge_mode == "pool" and schedule.num_rounds > 0:
            merge_ft = FaultToleranceStats()
            with tracer.span(
                "merge.dispatch", cat="merge",
                rounds=schedule.num_rounds, workers=cfg.workers,
            ) as merge_dispatch:
                merge_results = self._pooled_merge_prepass(
                    cfg, tracer, payloads, groups_by_round, cuts_by_round,
                    presimplified, merge_ft, session=session, spool=spool,
                )
            merge_wall = merge_dispatch.duration
            logger.info(
                "merge stage done: %d merges over %d rounds in %.3fs on "
                "pool executor",
                len(merge_results), schedule.num_rounds, merge_wall,
            )
            # fold the merge executor's counters into the run's fault
            # stats; executor-level retries are merge retries here
            ft.merge_retries += merge_ft.retries
            ft.pool_restarts += merge_ft.pool_restarts
            ft.backoff_seconds += merge_ft.backoff_seconds
            if merge_ft.degraded:
                ft.degraded = True
                ft.degradation_events.extend(merge_ft.degradation_events)
            if cfg.trace:
                for mp in merge_results.values():
                    tracer.absorb(mp.trace_events)

        ctx = _RunContext(
            cfg=cfg,
            decomp=decomp,
            schedule=schedule,
            model=model,
            vertex_bytes=vertex_bytes,
            payloads=payloads,
            groups_by_round=groups_by_round,
            cuts_by_round=cuts_by_round,
            ft=ft,
            tracer=tracer,
            merge_mode=merge_mode,
            merge_results=merge_results,
            presimplified=presimplified,
            spool=spool,
        )

        with tracer.span(
            "merge.stage", cat="merge", rounds=schedule.num_rounds
        ):
            mpi = VirtualMPI(num_procs)
            rank_returns = mpi.run(_rank_main, ctx)

        stats = PipelineStats(
            num_procs=num_procs,
            num_blocks=cfg.num_blocks,
            radices=[r.radix for r in schedule.rounds],
            message_bytes=sum(m.nbytes for m in mpi.message_log),
            workers=cfg.workers,
            executor=cfg.resolved_executor,
            merge_executor=merge_mode,
            compute_wall_seconds=dispatch_span.duration,
            faults=ft,
            transport=transport,
        )
        output_blocks: dict[int, MorseSmaleComplex] = {}
        output_blobs: dict[int, bytes] = {}
        for ret in rank_returns:
            stats.block_stats.extend(ret["block_stats"])
            stats.merge_events.extend(ret["merge_events"])
            stats.timelines.append(ret["timeline"])
            for bid, msc in ret["final_blocks"].items():
                output_blocks[bid] = msc
            output_blobs.update(ret["final_blobs"])
        stats.block_stats.sort(key=lambda b: b.block_id)
        stats.merge_wall_seconds = (
            merge_wall
            if merge_mode == "pool"
            else sum(ev.real_seconds for ev in stats.merge_events)
        )
        # the write stage already packed every final complex once; reuse
        # those bytes instead of serializing a second time
        with tracer.span(
            "io.serialize_output", cat="io", blocks=len(output_blocks)
        ):
            stats.output_bytes = sum(
                len(b) for b in output_blobs.values()
            )
        # multiscale capture: one infinite-persistence sweep per output
        # block over a throwaway copy records the full cancellation
        # sequence; level 0 of each hierarchy is the block exactly as
        # stored, so any later threshold is a pure lookup
        hierarchies = None
        if cfg.hierarchy:
            with tracer.span(
                "hierarchy.capture", cat="pipeline",
                blocks=len(output_blocks),
            ):
                hierarchies = {
                    bid: MSComplexHierarchy.capture(output_blocks[bid])
                    for bid in sorted(output_blocks)
                }
        return PipelineResult(
            output_blocks=output_blocks,
            decomposition=decomp,
            schedule=schedule,
            stats=stats,
            output_blobs=output_blobs,
            hierarchies=hierarchies,
        )

    def _pooled_merge_prepass(
        self,
        cfg: PipelineConfig,
        tracer: Tracer,
        payloads: dict[int, BlockPayload],
        groups_by_round,
        cuts_by_round,
        presimplified: bool,
        merge_ft: FaultToleranceStats,
        session: Any = None,
        spool: BlobSpool | None = None,
    ) -> dict[tuple[int, int], MergePayload]:
        """Fan every round's root merges out over a worker pool.

        Maintains the current packed blob of every surviving block
        (round 0 starts from the compute payloads' blobs — already the
        ``pack_complex`` format) and dispatches each round's independent
        :class:`MergeSpec` batch through a fault-tolerant executor; a
        worker crash retries the merge from the immutable input blobs,
        and an unhealthy pool degrades to in-process execution, both
        bit-identical.  Returns the per-merge results for the rank
        programs to adopt.  A session keeps the merge pool alive across
        runs; one-shot runs build and close it here.

        With a ``spool``, the pre-pass tracks *keys*, not bytes: every
        blob lives in the spool (compute blobs under ``("b", bid)``,
        merge snapshots under ``("m", round, root)``), specs are built
        from :meth:`~repro.io.spool.BlobSpool.handle` at dispatch time
        — resident bytes or a tiny spilled ref a worker materializes
        from disk — and each round's results are stripped back into the
        spool as they land, so driver residency stays bounded by the
        spill budget however many blocks or rounds there are.
        """
        if session is not None:
            executor, _reused = session._merge_pool_executor(
                merge_ft, tracer if cfg.trace else None
            )
        else:
            executor = FaultTolerantExecutor(
                kind="process",
                workers=cfg.workers,
                policy=cfg.retry_policy(),
                plan=(
                    MergeFaultAdapter(cfg.faults)
                    if cfg.faults is not None
                    else None
                ),
                validator=validate_merge_payload,
                stats=merge_ft,
                tracer=tracer if cfg.trace else None,
            )
        results: dict[tuple[int, int], MergePayload] = {}
        if spool is not None:
            # track spool keys; bytes stay in the spool until dispatch
            current: dict[int, Any] = {bid: ("b", bid) for bid in payloads}

            def resolve(entry):
                return spool.handle(entry)

            def on_merge_result(spec, mp, _spool=spool):
                # strip each merged snapshot into the spool as it lands
                # so a whole round's results are never resident at once
                _spool.put(("m", mp.round_idx, mp.root_block), mp.blob)
                mp.blob = b""
        else:
            current = {bid: p.blob for bid, p in payloads.items()}

            def resolve(entry):
                return entry

            on_merge_result = None
        try:
            for round_idx, groups in enumerate(groups_by_round):
                specs = []
                for root_bid, _root_rank, members in groups:
                    member_blobs = tuple(
                        resolve(current.pop(mbid)) for mbid, _ in members
                    )
                    specs.append(
                        MergeSpec(
                            round_idx=round_idx,
                            root_block=root_bid,
                            root_blob=resolve(current[root_bid]),
                            member_blobs=member_blobs,
                            cut_planes=cuts_by_round[round_idx],
                            persistence_threshold=(
                                cfg.persistence_threshold
                            ),
                            incremental=round_idx > 0 or presimplified,
                            validate=cfg.validate,
                            trace=cfg.trace,
                        )
                    )
                try:
                    round_payloads = executor.map_blocks(
                        merge_task, specs, on_result=on_merge_result
                    )
                except ComputeStageError as exc:
                    raise MergeStageError(str(exc)) from exc
                for mp in round_payloads:
                    current[mp.root_block] = (
                        ("m", mp.round_idx, mp.root_block)
                        if spool is not None
                        else mp.blob
                    )
                    results[(mp.round_idx, mp.root_block)] = mp
        finally:
            if session is None:
                executor.close()
        return results

    def _trace_record(
        self, tracer: Tracer, stats: PipelineStats
    ) -> TraceRecord:
        """Label the stitched timeline's processes and lanes."""
        process_names = {tracer.pid: "driver"}
        thread_names = {(tracer.pid, DRIVER_LANE): "main"}
        for r in range(stats.num_procs):
            thread_names[(tracer.pid, RANK_LANE_BASE + r)] = f"rank {r}"
        for e in tracer.events:
            if e.pid not in process_names:
                process_names[e.pid] = f"worker {e.pid}"
                thread_names[(e.pid, DRIVER_LANE)] = "worker"
        return TraceRecord(
            events=tracer.events,
            process_names=process_names,
            thread_names=thread_names,
        )

    @staticmethod
    def _fill_run_metrics(
        registry: MetricsRegistry, stats: PipelineStats
    ) -> None:
        """Fold driver-side observations into the run registry.

        Worker-side snapshots (shipped in the payloads) were already
        merged during the compute stage; this adds what only the driver
        sees: fault-tolerance counters, transport bytes, merge-round
        glue sizes, and output bytes.
        """
        for name, value in stats.faults.counters().items():
            registry.counter(f"faults.{name}").inc(value)
        registry.counter("faults.backoff_seconds").inc(
            stats.faults.backoff_seconds
        )
        registry.counter("transport.dispatches").inc(
            stats.transport.dispatches
        )
        registry.counter("transport.dispatch_bytes").inc(
            stats.transport.dispatch_bytes
        )
        registry.gauge("transport.driver_staged_bytes").set(
            stats.transport.driver_staged_bytes
        )
        registry.counter("transport.shm_rebinds").inc(
            stats.transport.shm_rebinds
        )
        registry.counter("transport.shm_republishes").inc(
            stats.transport.shm_republishes
        )
        registry.gauge("shm.volume_bytes").set(
            stats.transport.shared_volume_bytes
        )
        registry.gauge("pipeline.workers").set(stats.workers)
        for ev in stats.merge_events:
            registry.histogram(
                "merge.glue_nodes", COUNT_BUCKETS
            ).observe(ev.nodes_glued)
            registry.histogram(
                "merge.glue_arcs", COUNT_BUCKETS
            ).observe(ev.arcs_glued)
            registry.histogram("merge.seconds").observe(ev.real_seconds)
            registry.counter("merge.cancellations").inc(ev.cancellations)
            registry.counter("merge.received_bytes").inc(
                ev.received_bytes
            )
        registry.counter("io.output_bytes").inc(stats.output_bytes)
        if stats.spool:
            registry.counter("spool.puts").inc(stats.spool["puts"])
            registry.counter("spool.spills").inc(stats.spool["spills"])
            registry.counter("spool.bytes_spilled").inc(
                stats.spool["bytes_spilled"]
            )
            registry.counter("spool.read_backs").inc(
                stats.spool["read_backs"]
            )
            registry.counter("spool.bytes_read_back").inc(
                stats.spool["bytes_read_back"]
            )
            registry.gauge("spool.resident_blobs").set(
                stats.spool["resident_blobs"]
            )
            registry.gauge("spool.resident_peak_bytes").set(
                stats.spool["resident_peak_bytes"]
            )


# ---------------------------------------------------------------------------
# the SPMD rank program
# ---------------------------------------------------------------------------


def _message_tag(round_idx: int, member_block: int, num_blocks: int) -> int:
    """Unique tag per (round, member block)."""
    return round_idx * num_blocks + member_block


def _rank_main(comm, ctx: _RunContext):
    """The per-rank program (a generator yielding comm requests)."""
    cfg, decomp, schedule, model = ctx.cfg, ctx.decomp, ctx.schedule, ctx.model
    P = comm.size
    my_blocks = decomp.blocks_of_rank(comm.rank, P)
    timeline = RankTimeline(rank=comm.rank)
    block_stats: list[BlockComputeStats] = []
    merge_events: list[MergeEventStats] = []
    clock = 0.0

    # ---- read data blocks (§IV-B) -------------------------------------
    read_bytes = 0
    for bid in my_blocks:
        box = decomp.block_box(decomp.block_coords(bid))
        read_bytes += box.num_vertices * ctx.vertex_bytes
    timeline.read = model.read_time(read_bytes)
    clock += timeline.read

    # ---- compute stage (§IV-C,D,E) -------------------------------------
    # Payloads were produced by the executor (this rank's blocks, computed
    # by :func:`compute_block` on the configured backend); here the rank
    # unpacks its own and charges the virtual clock with the makespan of
    # its blocks over its `workers`-wide pool rather than the serial sum.
    # In pooled merge mode the merges themselves were also precomputed by
    # the driver, so the rank stays blob-resident: it ships and adopts
    # packed bytes and never unpacks a complex until the write stage.
    pooled_merge = ctx.merge_mode == "pool"
    complexes: dict[int, MorseSmaleComplex] = {}
    blobs: dict[int, bytes] = {}
    hierarchies: dict[int, list] = {}
    block_virtual: list[float] = []
    for bid in my_blocks:
        payload = ctx.payloads.pop(bid)
        work = ComputeWork(
            cells=payload.cells,
            geometry_cells=payload.geometry_cells_traced,
            cancellations=payload.cancellations,
        )
        virt = model.compute_time(work)
        block_virtual.append(virt)
        if pooled_merge:
            # with a spool the rank holds blob *handles* — resident
            # bytes or tiny spilled refs — never forced bytes
            blobs[bid] = (
                ctx.spool.handle(("b", bid))
                if ctx.spool is not None
                else payload.blob
            )
            hierarchies[bid] = []
        else:
            complexes[bid] = unpack_complex(payload.blob)
        block_stats.append(
            BlockComputeStats(
                block_id=bid,
                rank=comm.rank,
                cells=payload.cells,
                critical_counts=payload.critical_counts,
                nodes_after_simplify=payload.nodes_after_simplify,
                arcs_after_simplify=payload.arcs_after_simplify,
                geometry_cells_traced=payload.geometry_cells_traced,
                cancellations=payload.cancellations,
                real_seconds=payload.real_seconds,
                virtual_seconds=virt,
                stage_seconds=dict(payload.stage_seconds),
                transport_nbytes=payload.transport_nbytes,
            )
        )
    timeline.compute = pool_makespan(block_virtual, cfg.workers)
    clock += timeline.compute

    # ---- merge rounds (§IV-F) -------------------------------------------
    nb = decomp.num_blocks
    owned = blobs if pooled_merge else complexes
    for round_idx in range(schedule.num_rounds):
        groups = ctx.groups_by_round[round_idx]
        # pass 1: send local member complexes to their group roots
        for root_bid, root_rank, members in groups:
            for mbid, m_rank in members:
                if m_rank != comm.rank or mbid not in owned:
                    continue  # not ours
                if pooled_merge:
                    blob = blobs.pop(mbid)
                else:
                    blob = pack_complex(complexes.pop(mbid))
                message = {"clock": clock, "blob": blob}
                if root_rank == comm.rank:
                    # local move: no message, data already resident
                    ctx.local_inbox[(comm.rank, round_idx, mbid)] = message
                else:
                    yield comm.send(
                        root_rank,
                        message,
                        tag=_message_tag(round_idx, mbid, nb),
                    )
        # pass 2: roots receive and merge
        cuts_after = ctx.cuts_by_round[round_idx]
        for root_bid, root_rank, members in groups:
            if root_rank != comm.rank or root_bid not in owned:
                continue
            arrivals = [clock]
            incoming_blobs: list[bytes] = []
            recv_bytes = 0
            for mbid, m_rank in members:
                if m_rank == comm.rank:
                    message = ctx.local_inbox.pop(
                        (comm.rank, round_idx, mbid)
                    )
                    arrivals.append(message["clock"])
                else:
                    message = yield comm.recv(
                        m_rank, tag=_message_tag(round_idx, mbid, nb)
                    )
                    nbytes = blob_nbytes(message["blob"])
                    recv_bytes += nbytes
                    arrivals.append(
                        message["clock"]
                        + model.message_time(nbytes, m_rank, comm.rank)
                    )
                incoming_blobs.append(message["blob"])
            wait = max(arrivals) - clock
            clock = max(arrivals)

            with ctx.tracer.span(
                "merge.round", cat="merge",
                lane=RANK_LANE_BASE + comm.rank,
                round=round_idx, root=root_bid,
                members=len(members), received_bytes=recv_bytes,
            ) as merge_span:
                if pooled_merge:
                    # adopt the result the merge executor precomputed;
                    # determinism makes it byte-identical to merging here
                    mp = ctx.merge_results[(round_idx, root_bid)]
                    blobs[root_bid] = (
                        ctx.spool.handle(("m", round_idx, root_bid))
                        if ctx.spool is not None
                        else mp.blob
                    )
                    hierarchies[root_bid].extend(mp.hierarchy)
                    outcome = mp.outcome
                    real = mp.real_seconds
                else:
                    def _count_merge_retry(attempt, exc, _ft=ctx.ft):
                        _ft.merge_retries += 1

                    fault_hook = (
                        cfg.faults.merge_hook(round_idx, root_bid)
                        if cfg.faults is not None
                        else None
                    )
                    root_msc, outcome, _ = merge_with_retries(
                        complexes[root_bid],
                        incoming_blobs,
                        cuts_after,
                        cfg.persistence_threshold,
                        validate=cfg.validate,
                        max_retries=cfg.max_retries,
                        incremental=round_idx > 0 or ctx.presimplified,
                        fault_hook=fault_hook,
                        on_retry=_count_merge_retry,
                    )
                    complexes[root_bid] = root_msc
                merge_span.annotate(
                    nodes_glued=outcome.glue.nodes_added,
                    arcs_glued=outcome.glue.arcs_added,
                    cancellations=outcome.cancellations,
                )
            if not pooled_merge:
                real = merge_span.duration
            mwork = MergeWork(
                glued_elements=(
                    outcome.glue.nodes_added + outcome.glue.arcs_added
                ),
                cancellations=outcome.cancellations,
                packed_bytes=recv_bytes,
            )
            mtime = model.merge_time(mwork)
            clock += mtime
            merge_events.append(
                MergeEventStats(
                    round_idx=round_idx,
                    root_block=root_bid,
                    root_rank=comm.rank,
                    members=len(members),
                    received_bytes=recv_bytes,
                    nodes_glued=outcome.glue.nodes_added,
                    arcs_glued=outcome.glue.arcs_added,
                    boundary_nodes_freed=outcome.boundary_nodes_freed,
                    cancellations=outcome.cancellations,
                    wait_seconds=wait,
                    merge_seconds=mtime,
                    real_seconds=real,
                )
            )
        timeline.after_round.append(clock)

    # ---- write MS complex blocks (§IV-G) --------------------------------
    # pack each surviving complex exactly once: the same bytes price the
    # virtual write, become the cached output blobs of the result, and
    # (pooled mode) are already at hand from the merge executor
    if pooled_merge:
        # spilled survivors are materialized exactly once, here: the
        # same bytes price the virtual write, become the result's
        # cached output blobs, and feed the unpack below
        if ctx.spool is not None:
            final_blobs = {
                bid: ctx.spool.materialize(h) for bid, h in blobs.items()
            }
        else:
            final_blobs = blobs
        final_blocks: dict[int, MorseSmaleComplex] = {}
        for bid, blob in final_blobs.items():
            msc = unpack_complex(blob)
            msc.hierarchy.extend(hierarchies[bid])
            final_blocks[bid] = msc
    else:
        final_blocks = complexes
        final_blobs = {
            bid: pack_complex(m) for bid, m in complexes.items()
        }
    write_bytes = sum(len(b) for b in final_blobs.values())
    timeline.write = model.write_time(write_bytes)
    clock += timeline.write
    timeline.final_clock = clock

    return {
        "block_stats": block_stats,
        "merge_events": merge_events,
        "timeline": timeline,
        "final_blocks": final_blocks,
        "final_blobs": final_blobs,
    }
