"""Algorithm 1: the two-stage parallel MS complex computation.

::

    Decompose domain                (§IV-A)
    Read data blocks                (§IV-B)
    for all local blocks do
        Compute discrete gradient   (§IV-C)
        Compute MS complex          (§IV-D)
        Simplify MS complex         (§IV-E)
    end for
    for number of rounds do
        Merge MS complex blocks     (§IV-F)
    end for
    Write MS complex blocks         (§IV-G)

The algorithm is data-parallel: every step is performed by every virtual
process.  Each rank runs :func:`_rank_main` as a generator program under
:class:`repro.parallel.runtime.VirtualMPI`; the computation is real (the
discrete gradient, tracing, simplification and gluing actually run), and
each rank additionally advances a *virtual clock* priced by the Blue
Gene/P cost model, from which the benchmark harness reads paper-style
stage timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.merge import pack_complex, perform_merge, unpack_complex
from repro.core.result import PipelineResult
from repro.core.stats import (
    BlockComputeStats,
    MergeEventStats,
    PipelineStats,
    RankTimeline,
)
from repro.io.mscfile import serialize_payload
from repro.io.volume import VolumeSpec, read_block
from repro.machine.costmodel import ComputeWork, CostModel, MergeWork
from repro.mesh.cubical import CubicalComplex
from repro.mesh.grid import StructuredGrid
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import (
    assert_acyclic,
    assert_gradient_field_valid,
    assert_ms_complex_valid,
)
from repro.parallel.decomposition import BlockDecomposition, decompose
from repro.parallel.radixk import MergeSchedule
from repro.parallel.runtime import VirtualMPI

__all__ = ["ParallelMSComplexPipeline", "compute_morse_smale_complex"]


def compute_morse_smale_complex(
    values: np.ndarray | StructuredGrid,
    persistence_threshold: float = 0.0,
    simplify: bool = True,
    validate: bool = False,
) -> MorseSmaleComplex:
    """Serial MS complex of a scalar field (single block, no merging).

    The convenience entry point for analysis at laptop scale and the
    reference the parallel computation is validated against.  Returns a
    compacted complex; the cancellation hierarchy remains available in
    ``msc.hierarchy``.
    """
    grid = values if isinstance(values, StructuredGrid) else StructuredGrid(values)
    cx = CubicalComplex(grid.values)
    field = compute_discrete_gradient(cx)
    if validate:
        assert_gradient_field_valid(field)
        assert_acyclic(field)
    msc = extract_ms_complex(field)
    if simplify:
        simplify_ms_complex(
            msc, persistence_threshold, respect_boundary=False
        )
    msc.compact()
    if validate:
        assert_ms_complex_valid(msc)
    return msc


@dataclass
class _RunContext:
    """Inputs shared by all ranks of one run (read-only)."""

    cfg: PipelineConfig
    decomp: BlockDecomposition
    schedule: MergeSchedule
    model: CostModel
    grid: StructuredGrid | None
    volume: VolumeSpec | None
    vertex_bytes: int  # bytes per vertex sample on storage
    #: per-round groups as (root_lid, root_rank, [(member_lid, member_rank)])
    groups_by_round: list[list[tuple[int, int, list[tuple[int, int]]]]] = field(
        default_factory=list
    )
    #: per-round remaining cut planes (after that round completes)
    cuts_by_round: list[tuple] = field(default_factory=list)
    #: same-rank member-to-root handoffs, keyed by (rank, round, block)
    local_inbox: dict[tuple[int, int, int], Any] = field(default_factory=dict)


class ParallelMSComplexPipeline:
    """Driver for the parallel MS complex computation.

    Typical use::

        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        result = ParallelMSComplexPipeline(cfg).run(field)
        merged = result.merged_complexes[0]
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def run(
        self,
        values: np.ndarray | StructuredGrid | None = None,
        volume: VolumeSpec | None = None,
    ) -> PipelineResult:
        """Run the full pipeline on an in-memory field or a volume file."""
        cfg = self.config
        if (values is None) == (volume is None):
            raise ValueError("pass exactly one of `values` or `volume`")
        grid = None
        if values is not None:
            grid = (
                values
                if isinstance(values, StructuredGrid)
                else StructuredGrid(values)
            )
            dims = grid.dims
            vertex_bytes = 4  # the paper's datasets are 32-bit floats
        else:
            dims = volume.dims
            vertex_bytes = volume.np_dtype.itemsize

        decomp = decompose(dims, cfg.num_blocks, cfg.splits)
        schedule = MergeSchedule(decomp, cfg.resolve_radices())
        num_procs = cfg.resolved_num_procs
        model = CostModel(cfg.machine, num_procs)
        groups_by_round = []
        cuts_by_round = []
        for r in range(schedule.num_rounds):
            rows = []
            for root_coords, member_coords in schedule.groups(r):
                root_lid = decomp.linear_id(root_coords)
                members = [
                    (
                        decomp.linear_id(mc),
                        decomp.rank_of_block(decomp.linear_id(mc), num_procs),
                    )
                    for mc in member_coords
                ]
                rows.append(
                    (root_lid, decomp.rank_of_block(root_lid, num_procs),
                     members)
                )
            groups_by_round.append(rows)
            cuts_by_round.append(schedule.cut_planes_after(r + 1))

        ctx = _RunContext(
            cfg=cfg,
            decomp=decomp,
            schedule=schedule,
            model=model,
            grid=grid,
            volume=volume,
            vertex_bytes=vertex_bytes,
            groups_by_round=groups_by_round,
            cuts_by_round=cuts_by_round,
        )

        t0 = time.perf_counter()
        mpi = VirtualMPI(num_procs)
        rank_returns = mpi.run(_rank_main, ctx)
        wall = time.perf_counter() - t0

        stats = PipelineStats(
            num_procs=num_procs,
            num_blocks=cfg.num_blocks,
            radices=[r.radix for r in schedule.rounds],
            real_seconds_total=wall,
            message_bytes=sum(m.nbytes for m in mpi.message_log),
        )
        output_blocks: dict[int, MorseSmaleComplex] = {}
        for ret in rank_returns:
            stats.block_stats.extend(ret["block_stats"])
            stats.merge_events.extend(ret["merge_events"])
            stats.timelines.append(ret["timeline"])
            for bid, msc in ret["final_blocks"].items():
                output_blocks[bid] = msc
        stats.block_stats.sort(key=lambda b: b.block_id)
        stats.output_bytes = sum(
            len(serialize_payload(m.to_payload()))
            for m in output_blocks.values()
        )
        return PipelineResult(
            output_blocks=output_blocks,
            decomposition=decomp,
            schedule=schedule,
            stats=stats,
        )


# ---------------------------------------------------------------------------
# the SPMD rank program
# ---------------------------------------------------------------------------


def _read_block_values(ctx: _RunContext, box) -> np.ndarray:
    if ctx.grid is not None:
        return np.array(ctx.grid.extract_block(box), dtype=np.float64)
    return read_block(ctx.volume, box)


def _message_tag(round_idx: int, member_block: int, num_blocks: int) -> int:
    """Unique tag per (round, member block)."""
    return round_idx * num_blocks + member_block


def _rank_main(comm, ctx: _RunContext):
    """The per-rank program (a generator yielding comm requests)."""
    cfg, decomp, schedule, model = ctx.cfg, ctx.decomp, ctx.schedule, ctx.model
    P = comm.size
    my_blocks = decomp.blocks_of_rank(comm.rank, P)
    timeline = RankTimeline(rank=comm.rank)
    block_stats: list[BlockComputeStats] = []
    merge_events: list[MergeEventStats] = []
    clock = 0.0

    # ---- read data blocks (§IV-B) -------------------------------------
    block_values: dict[int, np.ndarray] = {}
    read_bytes = 0
    for bid in my_blocks:
        box = decomp.block_box(decomp.block_coords(bid))
        block_values[bid] = _read_block_values(ctx, box)
        read_bytes += box.num_vertices * ctx.vertex_bytes
    timeline.read = model.read_time(read_bytes)
    clock += timeline.read

    # ---- compute stage (§IV-C,D,E) -------------------------------------
    complexes: dict[int, MorseSmaleComplex] = {}
    compute_virtual = 0.0
    for bid in my_blocks:
        box = decomp.block_box(decomp.block_coords(bid))
        t0 = time.perf_counter()
        cx = CubicalComplex(
            block_values.pop(bid),
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        field = compute_discrete_gradient(cx)
        if cfg.validate:
            assert_gradient_field_valid(field)
            assert_acyclic(field)
        msc = extract_ms_complex(field)
        geometry_traced = msc.total_geometry_length()
        crit_counts = field.critical_counts()
        if cfg.persistence_threshold == 0 and not cfg.simplify_at_zero_persistence:
            cancels = []
        else:
            cancels = simplify_ms_complex(
                msc, cfg.persistence_threshold, respect_boundary=True
            )
        msc.compact()
        if cfg.validate:
            assert_ms_complex_valid(msc)
        real = time.perf_counter() - t0
        work = ComputeWork(
            cells=cx.num_cells,
            geometry_cells=geometry_traced,
            cancellations=len(cancels),
        )
        virt = model.compute_time(work)
        compute_virtual += virt
        complexes[bid] = msc
        block_stats.append(
            BlockComputeStats(
                block_id=bid,
                rank=comm.rank,
                cells=cx.num_cells,
                critical_counts=crit_counts,
                nodes_after_simplify=msc.num_alive_nodes(),
                arcs_after_simplify=msc.num_alive_arcs(),
                geometry_cells_traced=geometry_traced,
                cancellations=len(cancels),
                real_seconds=real,
                virtual_seconds=virt,
            )
        )
        del cx, field
    timeline.compute = compute_virtual
    clock += compute_virtual

    # ---- merge rounds (§IV-F) -------------------------------------------
    nb = decomp.num_blocks
    for round_idx in range(schedule.num_rounds):
        groups = ctx.groups_by_round[round_idx]
        # pass 1: send local member complexes to their group roots
        for root_bid, root_rank, members in groups:
            for mbid, m_rank in members:
                if m_rank != comm.rank or mbid not in complexes:
                    continue  # not ours
                blob = pack_complex(complexes.pop(mbid))
                message = {"clock": clock, "blob": blob}
                if root_rank == comm.rank:
                    # local move: no message, data already resident
                    ctx.local_inbox[(comm.rank, round_idx, mbid)] = message
                else:
                    yield comm.send(
                        root_rank,
                        message,
                        tag=_message_tag(round_idx, mbid, nb),
                    )
        # pass 2: roots receive and merge
        cuts_after = ctx.cuts_by_round[round_idx]
        for root_bid, root_rank, members in groups:
            if root_rank != comm.rank or root_bid not in complexes:
                continue
            arrivals = [clock]
            incoming: list[MorseSmaleComplex] = []
            recv_bytes = 0
            for mbid, m_rank in members:
                if m_rank == comm.rank:
                    message = ctx.local_inbox.pop(
                        (comm.rank, round_idx, mbid)
                    )
                    arrivals.append(message["clock"])
                else:
                    message = yield comm.recv(
                        m_rank, tag=_message_tag(round_idx, mbid, nb)
                    )
                    nbytes = len(message["blob"])
                    recv_bytes += nbytes
                    arrivals.append(
                        message["clock"]
                        + model.message_time(nbytes, m_rank, comm.rank)
                    )
                incoming.append(unpack_complex(message["blob"]))
            wait = max(arrivals) - clock
            clock = max(arrivals)
            t0 = time.perf_counter()
            root_msc = complexes[root_bid]
            outcome = perform_merge(
                root_msc,
                incoming,
                cuts_after,
                cfg.persistence_threshold,
                validate=cfg.validate,
            )
            real = time.perf_counter() - t0
            mwork = MergeWork(
                glued_elements=(
                    outcome.glue.nodes_added + outcome.glue.arcs_added
                ),
                cancellations=outcome.cancellations,
                packed_bytes=recv_bytes,
            )
            mtime = model.merge_time(mwork)
            clock += mtime
            merge_events.append(
                MergeEventStats(
                    round_idx=round_idx,
                    root_block=root_bid,
                    root_rank=comm.rank,
                    members=len(members),
                    received_bytes=recv_bytes,
                    nodes_glued=outcome.glue.nodes_added,
                    arcs_glued=outcome.glue.arcs_added,
                    boundary_nodes_freed=outcome.boundary_nodes_freed,
                    cancellations=outcome.cancellations,
                    wait_seconds=wait,
                    merge_seconds=mtime,
                    real_seconds=real,
                )
            )
        timeline.after_round.append(clock)

    # ---- write MS complex blocks (§IV-G) --------------------------------
    write_bytes = sum(
        len(pack_complex(m)) for m in complexes.values()
    )
    timeline.write = model.write_time(write_bytes)
    clock += timeline.write
    timeline.final_clock = clock

    return {
        "block_stats": block_stats,
        "merge_events": merge_events,
        "timeline": timeline,
        "final_blocks": complexes,
    }
