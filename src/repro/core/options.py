"""The grouped execution-options surface of the public API.

The pipeline has grown a family of *execution* knobs — how the work is
scheduled (worker pool, transports, per-stage backends) and how failures
are handled (timeouts, retries, degradation) — that are pure scheduling:
none of them changes the computed complex by a single byte.  They are
grouped here into one frozen dataclass, :class:`ExecutionOptions`, so
the public entry points take a single ``options=`` argument instead of
a dozen flat keywords, and so every backend knob is validated in one
place with one readable error shape (``choose one of {...}``) at
configuration time rather than deep inside the pipeline.

::

    import repro
    from repro.core.options import ExecutionOptions

    opts = ExecutionOptions(workers=4, transport="shm",
                            kernel_backend="pointer")
    result = repro.compute(field, persistence=0.05, ranks=8,
                           options=opts)

The flat keyword spellings (``repro.compute(..., workers=4)``) keep
working for one release behind a :class:`DeprecationWarning`; see
``docs/API.md``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.morse.tracing import KERNEL_BACKENDS
from repro.parallel.executor import EXECUTOR_KINDS
from repro.parallel.transport import TRANSPORT_KINDS

__all__ = [
    "MERGE_EXECUTOR_KINDS",
    "ExecutionOptions",
    "canonical_fingerprint",
    "validate_choice",
]


def canonical_fingerprint(kind: str, payload: dict) -> str:
    """Stable SHA-256 hex digest of a keyword payload.

    The canonical encoding — sorted-key JSON over plain
    str/int/float/bool/None/list values — is what makes every
    fingerprint in the package *spelling-independent*: any two code
    paths (flat keywords, ``options=``, CLI flags, a parsed HTTP
    request) that arrive at equal field values produce the same digest,
    and any field change produces a different one.  ``kind`` namespaces
    the digest so an options fingerprint can never collide with a
    config fingerprint built from coincidentally equal payloads.
    """
    try:
        body = json.dumps(payload, sort_keys=True, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"{kind} fingerprint payload is not canonically "
            f"JSON-encodable: {exc}"
        ) from None
    return hashlib.sha256(f"{kind}:{body}".encode()).hexdigest()

#: merge-stage backend choices: "serial" runs root merges inside the
#: virtual ranks, "pool" fans each round's independent merges over the
#: worker pool, "auto" pools exactly when the compute stage does
MERGE_EXECUTOR_KINDS = ("auto", "serial", "pool")

#: every backend knob, its allowed values, in one table — the single
#: source the config/CLI validation and the docs knob tables read
BACKEND_KNOB_KINDS = {
    "executor": EXECUTOR_KINDS,
    "merge_executor": MERGE_EXECUTOR_KINDS,
    "transport": TRANSPORT_KINDS,
    "kernel_backend": KERNEL_BACKENDS,
}


def validate_choice(name: str, value: object, kinds: tuple[str, ...]) -> None:
    """Raise the uniform readable error for an invalid knob value.

    All backend knobs (``executor``, ``merge_executor``, ``transport``,
    ``kernel_backend``) fail with the same shape at configuration time::

        invalid transport 'smh': choose one of {auto, pickle, shm}
    """
    if value not in kinds:
        raise ValueError(
            f"invalid {name} {value!r}: choose one of "
            f"{{{', '.join(kinds)}}}"
        )


@dataclass(frozen=True)
class ExecutionOptions:
    """How one pipeline run executes — scheduling and fault handling.

    Every scheduling field is a pure scheduling choice: the computed
    complex is bit-identical across all settings.  The one additive
    knob, ``hierarchy``, never changes the complex either — it only
    captures an extra artifact (the cancellation hierarchy) alongside
    it.  Accepted by :func:`repro.api.compute` and
    :class:`repro.core.config.PipelineConfig` as ``options=``; field
    names match the flat ``PipelineConfig`` fields one-to-one.

    Parameters
    ----------
    workers:
        Width of the shared-memory worker pool the compute stage runs
        on; ``1`` (default) computes blocks serially in-process.
    executor:
        Compute-stage backend: ``"auto"`` (worker pool exactly when
        ``workers > 1``), ``"serial"``, or ``"process"``.
    merge_executor:
        Merge-stage backend: ``"serial"``, ``"pool"``, or ``"auto"``
        (pool exactly when the compute stage resolves to a pool).
    transport:
        Block-data transport to pool workers: ``"pickle"``, ``"shm"``,
        ``"mmap"`` (volume-file inputs only; workers subarray-read from
        disk and the driver never materializes the volume), or
        ``"auto"`` (shm exactly when a process pool runs; mmap whenever
        the input is a :class:`repro.io.volume.VolumeSpec`).
    kernel_backend:
        V-path tracing backend: ``"dfs"`` (per-path depth-first),
        ``"pointer"`` (vectorized pointer jumping), or ``"auto"``
        (by block size; see :mod:`repro.morse.tracing`).
    block_timeout:
        Per-block compute timeout in seconds (process executor);
        ``None`` waits forever.  Timed-out blocks are retried.
    max_retries:
        Extra attempts a failed block (or root merge) gets before the
        run degrades or errors out.
    retry_backoff:
        Base of the exponential backoff between attempts; ``0`` retries
        immediately.
    degrade_on_failure:
        Fall back to in-process serial execution when the worker pool
        is unhealthy, instead of failing the run.
    max_pool_restarts:
        Worker-pool rebuilds tolerated before declaring the pool
        unhealthy.
    hierarchy:
        Capture the cancellation hierarchy of every output block after
        the merge stage and persist it in the ``.msc`` v2 hierarchy
        footer on :meth:`~repro.core.result.PipelineResult.write`, so
        any persistence threshold can later be answered as a pure query
        (:func:`repro.api.query`) with zero re-simplification.  The
        output complex bytes are unchanged; off by default.
    merge_spill_budget_bytes:
        Resident-byte budget of the merge stage's packed-blob spool
        (pooled merge only).  ``None`` (default) keeps every blob in
        driver memory — byte-for-byte the pre-spool pipeline.  A bound
        spills least-recently-used blobs to content-addressed files
        under a run-scoped temp directory between radix rounds, keeping
        peak driver RSS roughly flat as block count grows; ``0`` spills
        everything.  Pure scheduling: outputs are bit-identical at any
        budget (see ``docs/PERFORMANCE.md``, "Out-of-core merge").
    """

    workers: int = 1
    executor: str = "auto"
    merge_executor: str = "auto"
    transport: str = "auto"
    kernel_backend: str = "auto"
    block_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    degrade_on_failure: bool = True
    max_pool_restarts: int = 2
    hierarchy: bool = False
    merge_spill_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.merge_spill_budget_bytes is not None:
            if (
                not isinstance(self.merge_spill_budget_bytes, int)
                or isinstance(self.merge_spill_budget_bytes, bool)
                or self.merge_spill_budget_bytes < 0
            ):
                raise ValueError(
                    "merge_spill_budget_bytes must be None or an int >= 0"
                )
        for name, kinds in BACKEND_KNOB_KINDS.items():
            validate_choice(name, getattr(self, name), kinds)

    def to_kwargs(self) -> dict:
        """The options as flat ``PipelineConfig`` keyword arguments."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def fingerprint(self) -> str:
        """Stable content hash over every execution knob.

        Spelling-independent: equal option values — whether built from
        flat keywords, ``options=``, CLI flags, or a service request —
        always produce the same digest, and changing any knob produces
        a different one (the property suite pins both directions).
        Note this fingerprints *how* a run executes; the result cache
        keys on :meth:`repro.core.config.PipelineConfig.result_fingerprint`
        instead, which deliberately excludes the pure-scheduling knobs.
        """
        return canonical_fingerprint("execution-options", self.to_kwargs())
