"""The paper's contribution: the two-stage parallel MS complex algorithm.

- :mod:`repro.core.config` — pipeline configuration (blocking, merge
  strategy, simplification threshold, machine parameters),
- :mod:`repro.core.pipeline` — Algorithm 1 as an SPMD program over the
  virtual MPI runtime, plus the serial convenience entry point,
- :mod:`repro.core.glue` — gluing two block complexes at shared boundary
  nodes (§IV-F3),
- :mod:`repro.core.merge` — pack/unpack and the per-round merge
  computation at group roots,
- :mod:`repro.core.stats` / :mod:`repro.core.result` — per-stage work and
  timing accounting consumed by the benchmark harness,
- :mod:`repro.core.globalsimplify` — §VII-B global persistence
  simplification over nearest-neighbor exchanges (future work,
  implemented),
- :mod:`repro.core.insitu` — §VII-B in-situ per-timestep analysis.
"""

from repro.core.config import PipelineConfig, MergeSchedule
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.core.result import PipelineResult

__all__ = [
    "MergeSchedule",
    "ParallelMSComplexPipeline",
    "PipelineConfig",
    "PipelineResult",
    "compute_morse_smale_complex",
]
