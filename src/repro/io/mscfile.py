"""Binary MS-complex block file with footer index (paper §IV-G).

Version 1 layout::

    [block 0 record][block 1 record]...[footer][footer_offset][magic]

Each block record serializes one compacted MS complex payload (see
:meth:`repro.morse.msc.MorseSmaleComplex.to_payload`) as a fixed header
of section lengths followed by the raw array bytes.  The footer is an
index of ``(block_id, offset, length)`` triples so that readers can seek
to any block ("a footer that provides an index to the MS complexes
contained in the file").  All integers are little-endian.

Version 2 (magic ``MSC2``) adds an optional **hierarchy section**: after
the block records come hierarchy records (one per block, the flat-array
:meth:`repro.analysis.hierarchy.MSComplexHierarchy.to_arrays` encoding —
birth/death intervals plus cancellation persistences), and the footer
gains a second ``(block_id, offset, length)`` index for them::

    [block records][hierarchy records]
    [u64 #blocks][block index][u64 #hierarchies][hierarchy index]
    [footer_offset][b"MSC2"]

Files written without hierarchies keep the v1 layout bit-for-bit, and v1
files remain fully readable; asking a v1 file for hierarchies raises a
"no hierarchy recorded" error (see :func:`read_msc_hierarchies`).  The
layout is documented in ``docs/FILEFORMAT.md``.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.obs.trace import get_tracer

__all__ = ["write_msc_file", "read_msc_file", "read_msc_hierarchies",
           "serialize_payload", "deserialize_payload",
           "serialize_hierarchy", "deserialize_hierarchy",
           "MAGIC", "MAGIC_V2"]

MAGIC = b"MSC1"
MAGIC_V2 = b"MSC2"

# payload sections in fixed order: (key, dtype)
_SECTIONS = (
    ("global_refined_dims", np.int64),
    ("region", np.int64),
    ("node_address", np.int64),
    ("node_index", np.uint8),
    ("node_value", np.float64),
    ("node_boundary", np.bool_),
    ("node_ghost", np.bool_),
    ("arc_upper", np.int64),
    ("arc_lower", np.int64),
    ("arc_geom", np.int64),
    ("geom_data", np.int64),
    ("geom_offsets", np.int64),
)

# hierarchy record sections in fixed order: (key, dtype) — the flat
# arrays of MSComplexHierarchy.to_arrays()
_HIERARCHY_SECTIONS = (
    ("node_address", np.int64),
    ("node_index", np.uint8),
    ("node_value", np.float64),
    ("node_death", np.int64),
    ("arc_upper_address", np.int64),
    ("arc_lower_address", np.int64),
    ("arc_birth", np.int64),
    ("arc_death", np.int64),
    ("persistences", np.float64),
)


def _serialize_sections(payload, sections) -> bytes:
    parts = [struct.pack("<I", len(sections))]
    blobs = []
    for key, dtype in sections:
        arr = np.ascontiguousarray(payload[key], dtype=dtype)
        blob = arr.tobytes()
        parts.append(struct.pack("<Q", len(blob)))
        blobs.append(blob)
    return b"".join(parts) + b"".join(blobs)


def _deserialize_sections(record, sections) -> dict[str, np.ndarray]:
    (nsec,) = struct.unpack_from("<I", record, 0)
    if nsec != len(sections):
        raise ValueError(
            f"record has {nsec} sections, expected {len(sections)}"
        )
    offset = 4
    lengths = []
    for _ in range(nsec):
        (ln,) = struct.unpack_from("<Q", record, offset)
        lengths.append(ln)
        offset += 8
    out: dict[str, np.ndarray] = {}
    for (key, dtype), ln in zip(sections, lengths):
        out[key] = np.frombuffer(
            record, dtype=dtype, count=ln // np.dtype(dtype).itemsize,
            offset=offset,
        ).copy()
        offset += ln
    return out


def serialize_payload(payload: dict[str, np.ndarray]) -> bytes:
    """Pack one MS complex payload into a block record."""
    return _serialize_sections(payload, _SECTIONS)


def deserialize_payload(record: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`serialize_payload`."""
    return _deserialize_sections(record, _SECTIONS)


def serialize_hierarchy(arrays: dict[str, np.ndarray]) -> bytes:
    """Pack one hierarchy (``to_arrays`` form) into a v2 record."""
    return _serialize_sections(arrays, _HIERARCHY_SECTIONS)


def deserialize_hierarchy(record: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`serialize_hierarchy`."""
    return _deserialize_sections(record, _HIERARCHY_SECTIONS)


def write_msc_file(
    path: str | Path,
    blocks: list[tuple[int, dict[str, np.ndarray]]],
    hierarchies: dict[int, dict[str, np.ndarray]] | None = None,
) -> int:
    """Write MS complex blocks plus footer index; returns bytes written.

    ``blocks`` holds ``(block_id, payload)`` pairs, typically one pair per
    merged output block (processes with no output block contribute
    nothing — the collective "null write").  A payload may also be a
    pre-serialized record (``bytes``, as produced by
    :func:`serialize_payload` / ``pack_complex``), which is written
    verbatim — the pipeline uses this to avoid re-packing complexes it
    already holds in serialized form.

    ``hierarchies`` optionally maps block ids to captured cancellation
    hierarchies in flat-array form
    (:meth:`repro.analysis.hierarchy.MSComplexHierarchy.to_arrays`).
    When given (and non-empty) the file is written in the v2 layout with
    a hierarchy section; otherwise the bytes are exactly the v1 format.
    """
    index: list[tuple[int, int, int]] = []
    hier_index: list[tuple[int, int, int]] = []
    with get_tracer().span(
        "io.write_msc", cat="io", path=str(path), blocks=len(blocks)
    ) as sp, open(path, "wb") as f:
        for block_id, payload in blocks:
            record = (
                bytes(payload)
                if isinstance(payload, (bytes, bytearray, memoryview))
                else serialize_payload(payload)
            )
            index.append((int(block_id), f.tell(), len(record)))
            f.write(record)
        if hierarchies:
            for block_id in sorted(hierarchies):
                record = serialize_hierarchy(hierarchies[block_id])
                hier_index.append((int(block_id), f.tell(), len(record)))
                f.write(record)
        footer_offset = f.tell()
        f.write(struct.pack("<Q", len(index)))
        for block_id, off, ln in index:
            f.write(struct.pack("<qQQ", block_id, off, ln))
        if hierarchies:
            f.write(struct.pack("<Q", len(hier_index)))
            for block_id, off, ln in hier_index:
                f.write(struct.pack("<qQQ", block_id, off, ln))
        f.write(struct.pack("<Q", footer_offset))
        f.write(MAGIC_V2 if hierarchies else MAGIC)
        sp.annotate(bytes=f.tell())
        return f.tell()


def _parse_footer(
    data: bytes, path: str | Path
) -> tuple[int, list[tuple[int, int, int]], list[tuple[int, int, int]]]:
    """Validate and parse a file's footer.

    Returns ``(version, block_index, hierarchy_index)``; raises a
    readable :class:`ValueError` on a bad magic or a truncated/corrupt
    footer.
    """
    if len(data) < 12 or data[-4:] not in (MAGIC, MAGIC_V2):
        raise ValueError(f"{path}: not an MSC file (bad magic)")
    version = 2 if data[-4:] == MAGIC_V2 else 1
    (footer_offset,) = struct.unpack_from("<Q", data, len(data) - 12)
    try:
        if footer_offset > len(data) - 12:
            raise ValueError("footer offset points past end of file")

        def read_index(pos: int) -> tuple[list, int]:
            (count,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            entries = []
            for _ in range(count):
                block_id, off, ln = struct.unpack_from("<qQQ", data, pos)
                pos += 24
                if off + ln > footer_offset:
                    raise ValueError(
                        f"record for block {block_id} extends past "
                        "the footer"
                    )
                entries.append((block_id, off, ln))
            return entries, pos

        blocks, pos = read_index(footer_offset)
        hiers: list[tuple[int, int, int]] = []
        if version == 2:
            hiers, pos = read_index(pos)
        if pos > len(data) - 12:
            raise ValueError("footer index overruns the file")
    except (struct.error, ValueError) as exc:
        raise ValueError(
            f"{path}: truncated or corrupt MSC footer ({exc})"
        ) from None
    return version, blocks, hiers


def _source_bytes(source: str | Path | bytes) -> tuple[bytes, str]:
    """The raw file image of a reader source, plus its display name.

    Readers accept either a path or the complete file image as
    ``bytes`` — the in-memory form the service result cache serves hot
    entries from, so a cached artifact can be read without touching
    disk.
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return bytes(source), "<memory>"
    return Path(source).read_bytes(), str(source)


def read_msc_file(
    source: str | Path | bytes,
) -> dict[int, dict[str, np.ndarray]]:
    """Read all MS complex blocks of a file, keyed by block id.

    ``source`` is a path or the whole file image as ``bytes``.  Reads
    both v1 and v2 files (the hierarchy section of a v2 file is simply
    skipped; see :func:`read_msc_hierarchies`).
    """
    data, path = _source_bytes(source)
    _version, blocks, _hiers = _parse_footer(data, path)
    out: dict[int, dict[str, np.ndarray]] = {}
    for block_id, off, ln in blocks:
        out[block_id] = deserialize_payload(data[off: off + ln])
    return out


def read_msc_hierarchies(
    source: str | Path | bytes,
) -> dict[int, dict[str, np.ndarray]]:
    """Read the persisted cancellation hierarchies of a v2 file.

    ``source`` is a path or the whole file image as ``bytes``.  Returns
    the flat arrays per block id (feed them to
    :meth:`repro.analysis.hierarchy.MSComplexHierarchy.from_arrays`).
    Raises a readable :class:`ValueError` for v1 files and for v2 files
    whose hierarchy index is empty — both mean no hierarchy was recorded
    when the file was written (recompute with the ``hierarchy`` option
    enabled to get one).
    """
    data, path = _source_bytes(source)
    version, _blocks, hiers = _parse_footer(data, path)
    if version == 1 or not hiers:
        raise ValueError(
            f"{path}: no hierarchy recorded "
            f"({'v1 file' if version == 1 else 'empty hierarchy index'}); "
            "recompute with hierarchy=True "
            "(ExecutionOptions(hierarchy=True) or repro compute "
            "--hierarchy) to persist one"
        )
    out: dict[int, dict[str, np.ndarray]] = {}
    for block_id, off, ln in hiers:
        out[block_id] = deserialize_hierarchy(data[off: off + ln])
    return out
