"""Binary MS-complex block file with footer index (paper §IV-G).

Layout::

    [block 0 record][block 1 record]...[footer][footer_offset][magic]

Each block record serializes one compacted MS complex payload (see
:meth:`repro.morse.msc.MorseSmaleComplex.to_payload`) as a fixed header
of section lengths followed by the raw array bytes.  The footer is an
index of ``(block_id, offset, length)`` triples so that readers can seek
to any block ("a footer that provides an index to the MS complexes
contained in the file").  All integers are little-endian.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.obs.trace import get_tracer

__all__ = ["write_msc_file", "read_msc_file", "serialize_payload",
           "deserialize_payload", "MAGIC"]

MAGIC = b"MSC1"

# payload sections in fixed order: (key, dtype)
_SECTIONS = (
    ("global_refined_dims", np.int64),
    ("region", np.int64),
    ("node_address", np.int64),
    ("node_index", np.uint8),
    ("node_value", np.float64),
    ("node_boundary", np.bool_),
    ("node_ghost", np.bool_),
    ("arc_upper", np.int64),
    ("arc_lower", np.int64),
    ("arc_geom", np.int64),
    ("geom_data", np.int64),
    ("geom_offsets", np.int64),
)


def serialize_payload(payload: dict[str, np.ndarray]) -> bytes:
    """Pack one MS complex payload into a block record."""
    parts = [struct.pack("<I", len(_SECTIONS))]
    blobs = []
    for key, dtype in _SECTIONS:
        arr = np.ascontiguousarray(payload[key], dtype=dtype)
        blob = arr.tobytes()
        parts.append(struct.pack("<Q", len(blob)))
        blobs.append(blob)
    return b"".join(parts) + b"".join(blobs)


def deserialize_payload(record: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`serialize_payload`."""
    (nsec,) = struct.unpack_from("<I", record, 0)
    if nsec != len(_SECTIONS):
        raise ValueError(
            f"record has {nsec} sections, expected {len(_SECTIONS)}"
        )
    offset = 4
    lengths = []
    for _ in range(nsec):
        (ln,) = struct.unpack_from("<Q", record, offset)
        lengths.append(ln)
        offset += 8
    payload: dict[str, np.ndarray] = {}
    for (key, dtype), ln in zip(_SECTIONS, lengths):
        payload[key] = np.frombuffer(
            record, dtype=dtype, count=ln // np.dtype(dtype).itemsize,
            offset=offset,
        ).copy()
        offset += ln
    return payload


def write_msc_file(
    path: str | Path, blocks: list[tuple[int, dict[str, np.ndarray]]]
) -> int:
    """Write MS complex blocks plus footer index; returns bytes written.

    ``blocks`` holds ``(block_id, payload)`` pairs, typically one pair per
    merged output block (processes with no output block contribute
    nothing — the collective "null write").  A payload may also be a
    pre-serialized record (``bytes``, as produced by
    :func:`serialize_payload` / ``pack_complex``), which is written
    verbatim — the pipeline uses this to avoid re-packing complexes it
    already holds in serialized form.
    """
    index: list[tuple[int, int, int]] = []
    with get_tracer().span(
        "io.write_msc", cat="io", path=str(path), blocks=len(blocks)
    ) as sp, open(path, "wb") as f:
        for block_id, payload in blocks:
            record = (
                bytes(payload)
                if isinstance(payload, (bytes, bytearray, memoryview))
                else serialize_payload(payload)
            )
            index.append((int(block_id), f.tell(), len(record)))
            f.write(record)
        footer_offset = f.tell()
        f.write(struct.pack("<Q", len(index)))
        for block_id, off, ln in index:
            f.write(struct.pack("<qQQ", block_id, off, ln))
        f.write(struct.pack("<Q", footer_offset))
        f.write(MAGIC)
        sp.annotate(bytes=f.tell())
        return f.tell()


def read_msc_file(path: str | Path) -> dict[int, dict[str, np.ndarray]]:
    """Read all MS complex blocks of a file, keyed by block id."""
    data = Path(path).read_bytes()
    if data[-4:] != MAGIC:
        raise ValueError(f"{path}: not an MSC file (bad magic)")
    (footer_offset,) = struct.unpack_from("<Q", data, len(data) - 12)
    (count,) = struct.unpack_from("<Q", data, footer_offset)
    out: dict[int, dict[str, np.ndarray]] = {}
    pos = footer_offset + 8
    for _ in range(count):
        block_id, off, ln = struct.unpack_from("<qQQ", data, pos)
        pos += 24
        out[block_id] = deserialize_payload(data[off: off + ln])
    return out
