"""Parallel block I/O substrate.

- :mod:`repro.io.volume` — raw scalar volumes on disk and the per-block
  subarray reads the paper performs with MPI-IO file views (§IV-B),
- :mod:`repro.io.mscfile` — the output format of the merged MS complex
  blocks: "a binary collection of all of the output blocks, followed by
  a footer that provides an index to the MS complexes contained in the
  file" (§IV-G).
"""

from repro.io.volume import VolumeSpec, write_volume, read_block, read_volume
from repro.io.mscfile import write_msc_file, read_msc_file

__all__ = [
    "VolumeSpec",
    "read_block",
    "read_msc_file",
    "read_volume",
    "write_msc_file",
    "write_volume",
]
