"""Raw scalar volumes and per-block subarray reads (paper §IV-B).

"Currently, we support unsigned byte, single-precision floating point,
and double-precision floating point data sets.  We use an MPI-IO parallel
read strategy whereby each process loops over its blocks, creates an MPI
subarray data type for that block, sets an MPI file view using that
datatype, and reads the block collectively."

The on-disk layout is the conventional raw-volume order with x varying
fastest.  :func:`read_block` is the virtual equivalent of the subarray
read: it maps the file and gathers exactly the block's subarray (shared
vertex layers included).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mesh.grid import Box
from repro.obs.trace import get_tracer

__all__ = [
    "VolumeSpec",
    "write_volume",
    "read_volume",
    "read_block",
    "content_hash",
    "invalidate_map_cache",
]

#: dtypes supported by the paper's reader
SUPPORTED_DTYPES = {
    "uint8": np.uint8,
    "float32": np.float32,
    "float64": np.float64,
}


@dataclass(frozen=True)
class VolumeSpec:
    """Description of a raw volume file: path, vertex dims, sample dtype."""

    path: str
    dims: tuple[int, int, int]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype {self.dtype!r} unsupported; "
                f"choose from {sorted(SUPPORTED_DTYPES)}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(SUPPORTED_DTYPES[self.dtype])

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.dims)) * self.np_dtype.itemsize


def write_volume(
    path: str | Path, values: np.ndarray, dtype: str = "float32"
) -> VolumeSpec:
    """Write a vertex array (indexed ``[i, j, k]``) as a raw volume file."""
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(f"dtype {dtype!r} unsupported")
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError("volume must be 3D")
    out = values.astype(SUPPORTED_DTYPES[dtype])
    with get_tracer().span(
        "io.write_volume", cat="io", path=str(path), bytes=out.nbytes
    ):
        # x fastest on disk
        out.ravel(order="F").tofile(str(path))
    return VolumeSpec(str(path), tuple(values.shape), dtype)


def read_volume(spec: VolumeSpec) -> np.ndarray:
    """Read a whole raw volume into a float64 vertex array."""
    with get_tracer().span(
        "io.read_volume", cat="io", path=spec.path, bytes=spec.nbytes
    ):
        data = np.fromfile(spec.path, dtype=spec.np_dtype)
    expected = int(np.prod(spec.dims))
    if data.size != expected:
        raise ValueError(
            f"{spec.path}: expected {expected} samples, found {data.size}"
        )
    return data.reshape(spec.dims, order="F").astype(np.float64)


#: single-slot per-process cache of the most recently mapped volume:
#: ``(key, reshaped memmap)`` where the key pins the spec identity
#: (path, dtype, dims) and the file's stat identity (inode, size,
#: mtime), so a rewritten or replaced file remaps automatically.
_MAP_CACHE: tuple | None = None


def _map_key(spec: VolumeSpec, st: os.stat_result) -> tuple:
    return (
        spec.path,
        spec.dtype,
        spec.dims,
        st.st_ino,
        st.st_size,
        st.st_mtime_ns,
    )


def invalidate_map_cache() -> None:
    """Drop the per-process memmap and content-hash caches.

    The next :func:`read_block` remaps the file and the next
    :func:`content_hash` re-reads it.  Call after overwriting a volume
    file in place from this process; long-lived service processes call
    this on session close so no stale map outlives the job it served.
    """
    global _MAP_CACHE
    _MAP_CACHE = None
    _HASH_CACHE.clear()


def _mapped_volume(spec: VolumeSpec) -> tuple[np.ndarray, bool]:
    """The reshaped read-only map of ``spec``, plus a cache-hit flag.

    Workers of the ``mmap`` transport read many blocks of the same
    volume back-to-back, so the map (and its size validation) is cached
    per process instead of rebuilt per block.
    """
    global _MAP_CACHE
    st = os.stat(spec.path)
    key = _map_key(spec, st)
    if _MAP_CACHE is not None and _MAP_CACHE[0] == key:
        return _MAP_CACHE[1], True
    mm = np.memmap(spec.path, dtype=spec.np_dtype, mode="r")
    expected = int(np.prod(spec.dims))
    if mm.size != expected:
        raise ValueError(
            f"{spec.path}: expected {expected} samples, found {mm.size}"
        )
    vol = mm.reshape(spec.dims, order="F")
    _MAP_CACHE = (key, vol)
    return vol, False


#: per-process content-hash memo: stat-keyed like the map cache, so a
#: service process hashes each (unchanged) volume file exactly once no
#: matter how many submissions reference it
_HASH_CACHE: dict[tuple, str] = {}

#: chunk size of the streaming file hash (1 MiB)
_HASH_CHUNK = 1 << 20


def content_hash(source: VolumeSpec | np.ndarray) -> str:
    """Canonical SHA-256 content hash of a scalar field.

    The hash pins everything that determines the samples a pipeline run
    reads: the vertex dims, the sample dtype, and the raw sample bytes
    in on-disk order (x fastest).  Two sources hash identically exactly
    when block reads from them are bit-identical — the property the
    content-addressed result cache (:mod:`repro.service.store`) keys on.

    A :class:`VolumeSpec` is hashed by streaming the file in chunks
    (nothing is materialized); repeat hashes of an unchanged file are
    served from a per-process cache keyed by the file's stat identity,
    so a daemon pays the read once per file version.  An in-memory
    array is hashed over the same canonical layout a
    :func:`write_volume` of it would produce (float64 samples), so
    equal-valued arrays hash equally regardless of memory order.
    """
    if isinstance(source, VolumeSpec):
        st = os.stat(source.path)
        key = _map_key(source, st)
        cached = _HASH_CACHE.get(key)
        if cached is not None:
            return cached
        if st.st_size != source.nbytes:
            raise ValueError(
                f"{source.path}: expected {source.nbytes} bytes for dims "
                f"{source.dims} dtype {source.dtype}, found {st.st_size}"
            )
        h = hashlib.sha256()
        h.update(f"volume:{source.dims}:{source.dtype}:".encode())
        with get_tracer().span(
            "io.content_hash", cat="io", path=source.path,
            bytes=source.nbytes,
        ):
            with open(source.path, "rb") as f:
                while chunk := f.read(_HASH_CHUNK):
                    h.update(chunk)
        digest = h.hexdigest()
        _HASH_CACHE[key] = digest
        return digest
    values = np.asarray(source, dtype=np.float64)
    if values.ndim != 3:
        raise ValueError("content_hash needs a 3D field or a VolumeSpec")
    h = hashlib.sha256()
    h.update(f"volume:{values.shape}:float64:".encode())
    h.update(np.ascontiguousarray(values.ravel(order="F")).tobytes())
    return h.hexdigest()


def read_block(spec: VolumeSpec, box: Box) -> np.ndarray:
    """Subarray read of one block (the virtual MPI-IO file view).

    Returns the block's vertex values as float64, shape ``box.shape``.
    Only the block's bytes are gathered (via a cached memory map),
    mirroring the access pattern of the MPI subarray type.
    """
    for l, h, n in zip(box.lo, box.hi, spec.dims):
        if l < 0 or h > n:
            raise ValueError(f"{box} exceeds volume dims {spec.dims}")
    with get_tracer().span("io.read_block", cat="io", path=spec.path) as sp:
        vol, cached = _mapped_volume(spec)
        block = np.array(vol[box.slices()], dtype=np.float64)
        sp.annotate(bytes=block.nbytes, map_cached=cached)
    return block
