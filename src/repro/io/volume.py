"""Raw scalar volumes and per-block subarray reads (paper §IV-B).

"Currently, we support unsigned byte, single-precision floating point,
and double-precision floating point data sets.  We use an MPI-IO parallel
read strategy whereby each process loops over its blocks, creates an MPI
subarray data type for that block, sets an MPI file view using that
datatype, and reads the block collectively."

The on-disk layout is the conventional raw-volume order with x varying
fastest.  :func:`read_block` is the virtual equivalent of the subarray
read: it maps the file and gathers exactly the block's subarray (shared
vertex layers included).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.mesh.grid import Box
from repro.obs.trace import get_tracer

__all__ = [
    "VolumeSpec",
    "write_volume",
    "write_volume_slabs",
    "read_volume",
    "read_block",
    "content_hash",
    "invalidate_map_cache",
]

#: dtypes supported by the paper's reader
SUPPORTED_DTYPES = {
    "uint8": np.uint8,
    "float32": np.float32,
    "float64": np.float64,
}


@dataclass(frozen=True)
class VolumeSpec:
    """Description of a raw volume file: path, vertex dims, sample dtype."""

    path: str
    dims: tuple[int, int, int]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValueError(
                f"dtype {self.dtype!r} unsupported; "
                f"choose from {sorted(SUPPORTED_DTYPES)}"
            )

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(SUPPORTED_DTYPES[self.dtype])

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.dims)) * self.np_dtype.itemsize


def write_volume(
    path: str | Path, values: np.ndarray, dtype: str = "float32"
) -> VolumeSpec:
    """Write a vertex array (indexed ``[i, j, k]``) as a raw volume file."""
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(f"dtype {dtype!r} unsupported")
    values = np.asarray(values)
    if values.ndim != 3:
        raise ValueError("volume must be 3D")
    out = values.astype(SUPPORTED_DTYPES[dtype])
    with get_tracer().span(
        "io.write_volume", cat="io", path=str(path), bytes=out.nbytes
    ):
        # x fastest on disk
        out.ravel(order="F").tofile(str(path))
    # an in-place rewrite can collide with the cached map's stat key
    # (same inode/size, and mtime granularity can hide a fast rewrite),
    # so the writing process drops its caches unconditionally
    invalidate_map_cache()
    return VolumeSpec(str(path), tuple(values.shape), dtype)


def write_volume_slabs(
    path: str | Path,
    dims: tuple[int, int, int],
    slabs,
    dtype: str = "float32",
) -> VolumeSpec:
    """Stream a raw volume to disk slab-by-slab along z.

    ``slabs`` is an iterable of 3D vertex arrays of shape
    ``(nx, ny, dz)`` — consecutive z-slabs that concatenated along the
    last axis form the full ``dims`` volume.  Because the on-disk
    layout is x fastest, each z-slab is one contiguous run of the file,
    so the write is a pure sequential append and nothing larger than a
    slab is ever materialized.  The resulting file is byte-identical to
    ``write_volume(path, whole_volume, dtype)`` of the concatenated
    slabs.  Raises :class:`ValueError` when slab shapes do not tile
    ``dims`` exactly.
    """
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(f"dtype {dtype!r} unsupported")
    dims = tuple(int(n) for n in dims)
    if len(dims) != 3 or any(n < 1 for n in dims):
        raise ValueError(f"dims must be 3 positive ints, got {dims}")
    np_dtype = SUPPORTED_DTYPES[dtype]
    nx, ny, nz = dims
    written_z = 0
    with get_tracer().span(
        "io.write_volume_slabs", cat="io", path=str(path),
        bytes=int(np.prod(dims)) * np.dtype(np_dtype).itemsize,
    ) as sp:
        num_slabs = 0
        with open(path, "wb") as fh:
            for slab in slabs:
                slab = np.asarray(slab)
                if (
                    slab.ndim != 3
                    or slab.shape[0] != nx
                    or slab.shape[1] != ny
                ):
                    raise ValueError(
                        f"slab shape {slab.shape} does not tile "
                        f"dims {dims} (expected ({nx}, {ny}, dz))"
                    )
                if written_z + slab.shape[2] > nz:
                    raise ValueError(
                        f"slabs overflow dims {dims}: z reached "
                        f"{written_z + slab.shape[2]}"
                    )
                slab.astype(np_dtype).ravel(order="F").tofile(fh)
                written_z += slab.shape[2]
                num_slabs += 1
        sp.annotate(slabs=num_slabs)
    if written_z != nz:
        raise ValueError(
            f"slabs underfill dims {dims}: z stopped at {written_z}"
        )
    # same stat-key-collision hazard as write_volume: drop the caches
    invalidate_map_cache()
    return VolumeSpec(str(path), dims, dtype)


def read_volume(spec: VolumeSpec) -> np.ndarray:
    """Read a whole raw volume into a float64 vertex array."""
    with get_tracer().span(
        "io.read_volume", cat="io", path=spec.path, bytes=spec.nbytes
    ):
        data = np.fromfile(spec.path, dtype=spec.np_dtype)
    expected = int(np.prod(spec.dims))
    if data.size != expected:
        raise ValueError(
            f"{spec.path}: expected {expected} samples, found {data.size}"
        )
    return data.reshape(spec.dims, order="F").astype(np.float64)


#: single-slot per-process cache of the most recently mapped volume:
#: ``(key, reshaped memmap)`` where the key pins the spec identity
#: (path, dtype, dims) and the file's stat identity (inode, size,
#: mtime), so a rewritten or replaced file remaps automatically.
_MAP_CACHE: tuple | None = None


def _map_key(spec: VolumeSpec, st: os.stat_result) -> tuple:
    return (
        spec.path,
        spec.dtype,
        spec.dims,
        st.st_ino,
        st.st_size,
        st.st_mtime_ns,
    )


def invalidate_map_cache() -> None:
    """Drop the per-process memmap and content-hash caches.

    The next :func:`read_block` remaps the file and the next
    :func:`content_hash` re-reads it.  Call after overwriting a volume
    file in place from this process; long-lived service processes call
    this on session close so no stale map outlives the job it served.
    """
    global _MAP_CACHE
    _MAP_CACHE = None
    _HASH_CACHE.clear()


def _mapped_volume(spec: VolumeSpec) -> tuple[np.ndarray, bool]:
    """The reshaped read-only map of ``spec``, plus a cache-hit flag.

    Workers of the ``mmap`` transport read many blocks of the same
    volume back-to-back, so the map (and its size validation) is cached
    per process instead of rebuilt per block.
    """
    global _MAP_CACHE
    st = os.stat(spec.path)
    key = _map_key(spec, st)
    if _MAP_CACHE is not None and _MAP_CACHE[0] == key:
        return _MAP_CACHE[1], True
    mm = np.memmap(spec.path, dtype=spec.np_dtype, mode="r")
    expected = int(np.prod(spec.dims))
    if mm.size != expected:
        raise ValueError(
            f"{spec.path}: expected {expected} samples, found {mm.size}"
        )
    vol = mm.reshape(spec.dims, order="F")
    _MAP_CACHE = (key, vol)
    return vol, False


#: per-process content-hash memo: stat-keyed like the map cache, so a
#: service process hashes each (unchanged) volume file exactly once no
#: matter how many submissions reference it
_HASH_CACHE: dict[tuple, str] = {}

#: chunk size of the streaming file hash (1 MiB)
_HASH_CHUNK = 1 << 20


def content_hash(source: VolumeSpec | np.ndarray) -> str:
    """Canonical SHA-256 content hash of a scalar field.

    The hash pins everything that determines the samples a pipeline run
    reads: the vertex dims, the sample dtype, and the raw sample bytes
    in on-disk order (x fastest).  Two sources hash identically exactly
    when block reads from them are bit-identical — the property the
    content-addressed result cache (:mod:`repro.service.store`) keys on.

    A :class:`VolumeSpec` is hashed by streaming the file in chunks
    (nothing is materialized); repeat hashes of an unchanged file are
    served from a per-process cache keyed by the file's stat identity,
    so a daemon pays the read once per file version.  An in-memory
    array is hashed over the same canonical layout a
    :func:`write_volume` of it would produce (float64 samples), so
    equal-valued arrays hash equally regardless of memory order.
    """
    if isinstance(source, VolumeSpec):
        st = os.stat(source.path)
        key = _map_key(source, st)
        cached = _HASH_CACHE.get(key)
        if cached is not None:
            return cached
        if st.st_size != source.nbytes:
            raise ValueError(
                f"{source.path}: expected {source.nbytes} bytes for dims "
                f"{source.dims} dtype {source.dtype}, found {st.st_size}"
            )
        h = hashlib.sha256()
        h.update(f"volume:{source.dims}:{source.dtype}:".encode())
        with get_tracer().span(
            "io.content_hash", cat="io", path=source.path,
            bytes=source.nbytes,
        ):
            with open(source.path, "rb") as f:
                while chunk := f.read(_HASH_CHUNK):
                    h.update(chunk)
        digest = h.hexdigest()
        _HASH_CACHE[key] = digest
        return digest
    values = np.asarray(source, dtype=np.float64)
    if values.ndim != 3:
        raise ValueError("content_hash needs a 3D field or a VolumeSpec")
    h = hashlib.sha256()
    h.update(f"volume:{values.shape}:float64:".encode())
    h.update(np.ascontiguousarray(values.ravel(order="F")).tobytes())
    return h.hexdigest()


def read_block(spec: VolumeSpec, box: Box) -> np.ndarray:
    """Subarray read of one block (the virtual MPI-IO file view).

    Returns the block's vertex values as float64, shape ``box.shape``.
    Only the block's bytes are gathered (via a cached memory map),
    mirroring the access pattern of the MPI subarray type.
    """
    for l, h, n in zip(box.lo, box.hi, spec.dims):
        if l < 0 or h > n:
            raise ValueError(f"{box} exceeds volume dims {spec.dims}")
    with get_tracer().span("io.read_block", cat="io", path=spec.path) as sp:
        vol, cached = _mapped_volume(spec)
        block = np.array(vol[box.slices()], dtype=np.float64)
        sp.annotate(bytes=block.nbytes, map_cached=cached)
    return block
