"""Disk-backed blob spool: bounded driver memory for the merge stage.

The pooled merge pre-pass (:mod:`repro.core.pipeline`) is a pipeline of
packed MS-complex blobs: every compute payload, every round's merged
snapshot, and the final write-stage bytes are the same
:func:`~repro.core.merge.pack_complex` currency.  Holding them all in
driver RAM makes peak RSS grow with block count and volume size — the
opposite of what the paper's 1152³ regime needs.  :class:`BlobSpool`
bounds that: blobs stay resident under a byte budget (the bit-identical
fast path), and are spilled LRU-first to content-addressed files under a
run-scoped spool directory when the budget is exceeded.

Handles, not copies, circulate through the pipeline:

- a *resident* blob's handle is the ``bytes`` object itself;
- a *spilled* blob's handle is a tiny picklable :class:`SpilledBlobRef`
  that any process (driver, pool worker, degraded-serial fallback) can
  materialize on demand with an mmap read of the spool file.

:func:`blob_bytes` / :func:`blob_nbytes` accept either form, so merge
workers, the fault-injection harness, and the write stage never branch
on where a blob lives.  Files are written atomically (temp name +
``os.replace``) and named by content digest, so identical blobs share
one file and a retry can never observe a half-written spill.

Crash safety: spool directories embed the owning pid
(``repro-spool-<pid>-<token>``); :func:`sweep_stale_spool_dirs` reaps
directories whose owner is dead and whose mtime is older than an age
guard, and runs once per process from session/spool startup, so a
crashed driver's spill files do not accumulate forever.
"""

from __future__ import annotations

import errno
import hashlib
import mmap
import os
import shutil
import tempfile
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.trace import get_tracer

__all__ = [
    "BlobSpool",
    "SpilledBlobRef",
    "SpoolStats",
    "blob_bytes",
    "blob_nbytes",
    "process_spool_totals",
    "sweep_stale_spool_dirs",
]

#: prefix of every run-scoped spool directory (followed by ``<pid>-<token>``)
SPOOL_PREFIX = "repro-spool-"

#: default age guard of the stale-directory sweep: a dead-owner dir is
#: only reaped when untouched for this long, so a directory another
#: process is *just creating* (pid recorded before first write) or a
#: pid-reuse collision can never be swept out from under a live run
STALE_AGE_SECONDS = 3600.0


@dataclass(frozen=True)
class SpilledBlobRef:
    """Picklable handle to one spilled blob: path, size, content digest.

    Self-contained by design — a pool worker that receives a ref inside
    a :class:`~repro.core.merge.MergeSpec` materializes it with
    :meth:`bytes` (an mmap read of the spool file) without any spool
    object, and the driver's spool bookkeeping never crosses the
    process boundary.
    """

    path: str
    nbytes: int
    digest: str

    def bytes(self) -> bytes:
        """Materialize the blob from its spool file (mmap read)."""
        with open(self.path, "rb") as fh:
            if self.nbytes == 0:
                return b""
            with mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                data = bytes(mm)
        if len(data) != self.nbytes:
            raise OSError(
                f"spool file {self.path} holds {len(data)} bytes, "
                f"expected {self.nbytes} (truncated spill?)"
            )
        return data


def blob_bytes(blob: bytes | SpilledBlobRef) -> bytes:
    """The packed bytes of a blob handle — resident or spilled."""
    if isinstance(blob, (bytes, bytearray, memoryview)):
        return bytes(blob)
    return blob.bytes()


def blob_nbytes(blob: bytes | SpilledBlobRef) -> int:
    """Size in bytes of a blob handle, without materializing it."""
    if isinstance(blob, (bytes, bytearray, memoryview)):
        return len(blob)
    return blob.nbytes


@dataclass
class SpoolStats:
    """Observability counters of one :class:`BlobSpool`."""

    #: blobs stored through :meth:`BlobSpool.put`
    puts: int = 0
    #: total bytes stored through :meth:`BlobSpool.put`
    bytes_put: int = 0
    #: blobs evicted from residency to disk (LRU-first)
    spills: int = 0
    #: bytes of spilled blobs whose file was actually written
    bytes_spilled: int = 0
    #: spills answered by an existing content-addressed file (dedup)
    dedup_hits: int = 0
    #: spilled blobs the driver materialized back from disk
    read_backs: int = 0
    #: bytes the driver read back from spool files
    bytes_read_back: int = 0
    #: resident blob bytes right now
    resident_bytes: int = 0
    #: highest resident byte count ever observed (the RSS-bound claim)
    resident_peak_bytes: int = 0
    #: resident blob count right now
    resident_blobs: int = 0
    #: logical bytes currently living on disk (per-key, dedup ignored)
    spilled_bytes: int = 0

    def to_dict(self) -> dict:
        """Stable scalar snapshot (benchmarks, ``/v1/stats``)."""
        return {
            "puts": self.puts,
            "bytes_put": self.bytes_put,
            "spills": self.spills,
            "bytes_spilled": self.bytes_spilled,
            "dedup_hits": self.dedup_hits,
            "read_backs": self.read_backs,
            "bytes_read_back": self.bytes_read_back,
            "resident_bytes": self.resident_bytes,
            "resident_peak_bytes": self.resident_peak_bytes,
            "resident_blobs": self.resident_blobs,
            "spilled_bytes": self.spilled_bytes,
        }


#: process-wide aggregate over every spool ever used here, updated live
#: on spill/read-back — the counters ``repro serve`` exposes through
#: ``GET /v1/stats`` so operators see merge memory pressure
_PROCESS_TOTALS = {
    "spools_opened": 0,
    "spills": 0,
    "bytes_spilled": 0,
    "read_backs": 0,
    "bytes_read_back": 0,
    "resident_blobs": 0,
    "resident_bytes": 0,
    "resident_peak_bytes": 0,
}


def process_spool_totals() -> dict:
    """Process-wide spool counters (all spools, live and closed)."""
    return dict(_PROCESS_TOTALS)


class BlobSpool:
    """LRU blob store with a resident-byte budget and disk spill-over.

    Parameters
    ----------
    budget_bytes:
        Resident-byte ceiling.  ``None`` (default) never spills: the
        spool is a pure in-memory table, touches no disk, and creates
        no directory — the fast path is byte-for-byte the pre-spool
        pipeline.  ``0`` spills everything immediately.
    base_dir:
        Parent of the run-scoped spool directory (default: the system
        temp dir).  The directory itself is created lazily, on the
        first spill only.

    Keys are arbitrary hashables (the pipeline uses
    ``("b", block_id)`` for compute blobs and ``("m", round, root)``
    for merge snapshots).  :meth:`put` stores a blob and eagerly
    enforces the budget by spilling least-recently-used entries;
    :meth:`handle` returns the blob's current form (bytes or
    :class:`SpilledBlobRef`) without any I/O; :meth:`get` always
    materializes bytes.  :meth:`close` removes the whole spool
    directory — spill files are immutable until then, which is what
    lets retries and the write stage re-read them instead of
    re-packing.
    """

    def __init__(
        self,
        budget_bytes: int | None = None,
        base_dir: str | Path | None = None,
        tracer=None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError("budget_bytes must be >= 0 or None")
        self.budget_bytes = budget_bytes
        self.base_dir = Path(base_dir) if base_dir else None
        self.stats = SpoolStats()
        self._tracer = tracer
        self._resident: OrderedDict = OrderedDict()
        self._spilled: dict = {}
        self._dir: Path | None = None
        self._closed = False
        _PROCESS_TOTALS["spools_opened"] += 1
        if budget_bytes is not None:
            # a bounded spool may touch disk; make sure orphans from
            # crashed earlier drivers get reaped (once per process)
            maybe_sweep_stale_spool_dirs(self.base_dir)

    # -- the blob table ----------------------------------------------------

    def put(self, key, blob: bytes) -> None:
        """Store ``blob`` under ``key`` and enforce the budget.

        The new blob enters as most-recently-used; when the resident
        total exceeds the budget, least-recently-used entries are
        spilled until it fits (the newest entry itself spills last —
        and only when it alone exceeds the budget).
        """
        if self._closed:
            raise RuntimeError("spool is closed")
        if not isinstance(blob, (bytes, bytearray, memoryview)):
            raise TypeError(
                f"spool stores packed bytes, got {type(blob).__name__}"
            )
        blob = bytes(blob)
        self.discard(key)
        self._resident[key] = blob
        self.stats.puts += 1
        self.stats.bytes_put += len(blob)
        self._account_resident(len(blob))
        if self.budget_bytes is not None:
            while (
                self.stats.resident_bytes > self.budget_bytes
                and self._resident
            ):
                old_key, old_blob = self._resident.popitem(last=False)
                self._spill(old_key, old_blob)

    def handle(self, key) -> bytes | SpilledBlobRef:
        """The blob's current form — resident bytes or a spilled ref.

        Never performs I/O; touching a resident entry marks it
        most-recently-used.
        """
        blob = self._resident.get(key)
        if blob is not None:
            self._resident.move_to_end(key)
            return blob
        ref = self._spilled.get(key)
        if ref is None:
            raise KeyError(f"no blob spooled under {key!r}")
        return ref

    def get(self, key) -> bytes:
        """The blob's bytes, read back from disk when spilled."""
        return self.materialize(self.handle(key))

    def materialize(self, blob: bytes | SpilledBlobRef) -> bytes:
        """Like :func:`blob_bytes`, with driver-side read-back stats."""
        if isinstance(blob, SpilledBlobRef):
            self.stats.read_backs += 1
            self.stats.bytes_read_back += blob.nbytes
            _PROCESS_TOTALS["read_backs"] += 1
            _PROCESS_TOTALS["bytes_read_back"] += blob.nbytes
            if self._tracer is not None:
                self._tracer.event(
                    "spool.read_back", cat="spool", bytes=blob.nbytes,
                )
        return blob_bytes(blob)

    def discard(self, key) -> None:
        """Drop ``key`` from the table (no-op when absent).

        A spilled entry's file is deliberately left on disk until
        :meth:`close` — content addressing may share it with other
        keys, and in-flight workers may still hold refs to it.
        """
        blob = self._resident.pop(key, None)
        if blob is not None:
            self._account_resident(-len(blob))
        ref = self._spilled.pop(key, None)
        if ref is not None:
            self.stats.spilled_bytes -= ref.nbytes

    def __contains__(self, key) -> bool:
        return key in self._resident or key in self._spilled

    def __len__(self) -> int:
        return len(self._resident) + len(self._spilled)

    # -- lifecycle ---------------------------------------------------------

    @property
    def spool_dir(self) -> Path | None:
        """The run-scoped directory (``None`` until the first spill)."""
        return self._dir

    def close(self) -> None:
        """Drop the table and remove the spool directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        resident_total = sum(len(b) for b in self._resident.values())
        self._resident.clear()
        self._account_resident(-resident_total)
        self._spilled.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "BlobSpool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _account_resident(self, delta_bytes: int) -> None:
        prev_blobs = self.stats.resident_blobs
        self.stats.resident_bytes += delta_bytes
        self.stats.resident_blobs = len(self._resident)
        _PROCESS_TOTALS["resident_bytes"] += delta_bytes
        _PROCESS_TOTALS["resident_blobs"] += self.stats.resident_blobs - prev_blobs
        if self.stats.resident_bytes > self.stats.resident_peak_bytes:
            self.stats.resident_peak_bytes = self.stats.resident_bytes
        if (
            _PROCESS_TOTALS["resident_bytes"]
            > _PROCESS_TOTALS["resident_peak_bytes"]
        ):
            _PROCESS_TOTALS["resident_peak_bytes"] = _PROCESS_TOTALS[
                "resident_bytes"
            ]

    def _ensure_dir(self) -> Path:
        if self._dir is None:
            base = self.base_dir or Path(tempfile.gettempdir())
            base.mkdir(parents=True, exist_ok=True)
            self._dir = (
                base / f"{SPOOL_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:8]}"
            )
            self._dir.mkdir()
        return self._dir

    def _spill(self, key, blob: bytes) -> None:
        """Write one evicted blob to its content-addressed file."""
        digest = hashlib.sha256(blob).hexdigest()
        path = self._ensure_dir() / f"{digest}.blob"
        if path.exists():
            self.stats.dedup_hits += 1
        else:
            # atomic publish: a crash mid-write leaves only a temp file
            # (reaped with the dir); readers never see partial bytes
            tmp = path.with_name(f"tmp-{os.getpid()}-{path.name}")
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
            self.stats.bytes_spilled += len(blob)
            _PROCESS_TOTALS["bytes_spilled"] += len(blob)
        ref = SpilledBlobRef(str(path), len(blob), digest)
        self._spilled[key] = ref
        self._account_resident(-len(blob))
        self.stats.spills += 1
        self.stats.spilled_bytes += len(blob)
        _PROCESS_TOTALS["spills"] += 1
        if self._tracer is not None:
            self._tracer.event(
                "spool.spill", cat="spool",
                bytes=len(blob), resident=self.stats.resident_bytes,
            )


# ---------------------------------------------------------------------------
# stale-directory sweep (crash recovery)
# ---------------------------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError as exc:  # pragma: no cover - exotic platforms
        return exc.errno != errno.ESRCH
    return True


def _spool_dir_pid(name: str) -> int | None:
    """The owner pid embedded in a spool directory name, if any."""
    if not name.startswith(SPOOL_PREFIX):
        return None
    rest = name[len(SPOOL_PREFIX):]
    pid_text = rest.split("-", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def sweep_stale_spool_dirs(
    base_dir: str | Path | None = None,
    min_age_seconds: float = STALE_AGE_SECONDS,
    now: float | None = None,
) -> list[Path]:
    """Reap spool directories orphaned by crashed drivers.

    A directory is stale exactly when (a) its name carries the
    ``repro-spool-<pid>-`` shape, (b) no process with that pid exists,
    and (c) its mtime is older than ``min_age_seconds`` — the age guard
    that protects both a directory mid-creation and a pid that was
    recycled since the crash.  Live directories (owner running) are
    never touched, whatever their age.  Returns the removed paths.

    Normal runs never need this — :meth:`BlobSpool.close` removes the
    run's directory — but a SIGKILLed or OOM-killed driver leaves its
    spill files behind; :class:`repro.core.session.PipelineSession`
    startup and the first bounded spool of a process each run one sweep.
    """
    import time as _time

    base = Path(base_dir) if base_dir else Path(tempfile.gettempdir())
    if now is None:
        now = _time.time()
    removed: list[Path] = []
    try:
        entries = list(base.iterdir())
    except OSError:
        return removed
    for entry in entries:
        pid = _spool_dir_pid(entry.name)
        if pid is None or not entry.is_dir():
            continue
        if _pid_alive(pid):
            continue
        try:
            age = now - entry.stat().st_mtime
        except OSError:
            continue  # vanished under us (concurrent sweep)
        if age < min_age_seconds:
            continue
        shutil.rmtree(entry, ignore_errors=True)
        removed.append(entry)
        get_tracer().event(
            "spool.sweep", cat="spool", path=str(entry), owner_pid=pid,
        )
    return removed


#: once-per-process latch of the startup sweep
_SWEPT = False


def maybe_sweep_stale_spool_dirs(
    base_dir: str | Path | None = None,
) -> list[Path]:
    """Run :func:`sweep_stale_spool_dirs` once per process (cheap no-op
    afterwards)."""
    global _SWEPT
    if _SWEPT:
        return []
    _SWEPT = True
    return sweep_stale_spool_dirs(base_dir)
